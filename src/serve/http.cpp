#include "serve/http.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace rh::serve {

namespace {

constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 8 * 1024 * 1024;
constexpr int kIoTimeoutSeconds = 10;

[[noreturn]] void throw_errno(const std::string& what) {
  throw common::ConfigError(what + ": " + std::strerror(errno));
}

void set_io_timeout(int fd) {
  timeval tv{};
  tv.tv_sec = kIoTimeoutSeconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

std::string reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 429: return "Too Many Requests";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

void send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("http: send failed");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

std::string lowercase(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

}  // namespace

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("http: cannot create listening socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string msg = "http: cannot bind 127.0.0.1:" + std::to_string(port);
    ::close(fd_);
    fd_ = -1;
    throw_errno(msg);
  }
  if (::listen(fd_, 64) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw_errno("http: listen failed");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw_errno("http: getsockname failed");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() { close(); }

int TcpListener::accept_connection(int timeout_ms) {
  if (fd_ < 0) return -1;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return -1;  // timeout, or EINTR — the caller re-polls
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) return -1;
  set_io_timeout(conn);
  const int one = 1;
  ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return conn;
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

HttpRequest read_http_request(int fd) {
  // Read until the blank line that ends the header block, then exactly
  // Content-Length body bytes (whatever spilled past the blank line counts).
  std::string buffer;
  std::size_t header_end = std::string::npos;
  char chunk[4096];
  while (header_end == std::string::npos) {
    if (buffer.size() > kMaxHeaderBytes) {
      throw HttpError("http: request headers exceed " + std::to_string(kMaxHeaderBytes) +
                      " bytes");
    }
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("http: recv failed");
    }
    if (n == 0) throw HttpError("http: connection closed mid-request");
    buffer.append(chunk, static_cast<std::size_t>(n));
    header_end = buffer.find("\r\n\r\n");
  }

  HttpRequest req;
  std::size_t pos = 0;
  const auto next_line = [&](std::size_t limit) {
    const std::size_t eol = buffer.find("\r\n", pos);
    const std::size_t end = (eol == std::string::npos || eol > limit) ? limit : eol;
    std::string line = buffer.substr(pos, end - pos);
    pos = end + 2;
    return line;
  };

  const std::string request_line = next_line(header_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    throw HttpError("http: malformed request line: " + request_line);
  }
  req.method = request_line.substr(0, sp1);
  req.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = request_line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) {
    throw HttpError("http: unsupported protocol version: " + version);
  }

  while (pos < header_end) {
    const std::string line = next_line(header_end);
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) throw HttpError("http: malformed header line: " + line);
    req.headers[lowercase(trim(line.substr(0, colon)))] = trim(line.substr(colon + 1));
  }

  std::size_t content_length = 0;
  if (const auto it = req.headers.find("content-length"); it != req.headers.end()) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
      throw HttpError("http: malformed Content-Length: " + it->second);
    }
    content_length = static_cast<std::size_t>(parsed);
    if (content_length > kMaxBodyBytes) {
      throw HttpError("http: request body exceeds " + std::to_string(kMaxBodyBytes) + " bytes");
    }
  }

  req.body = buffer.substr(header_end + 4);
  while (req.body.size() < content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("http: recv failed");
    }
    if (n == 0) throw HttpError("http: connection closed mid-body");
    req.body.append(chunk, static_cast<std::size_t>(n));
  }
  req.body.resize(content_length);
  return req;
}

void write_http_response(int fd, const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    reason_phrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += response.body;
  send_all(fd, out.data(), out.size());
}

HttpResponse http_request(std::uint16_t port, const std::string& method,
                          const std::string& target, const std::string& body,
                          const std::map<std::string, std::string>& headers) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("http: cannot create client socket");
  set_io_timeout(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string msg = "http: cannot connect to 127.0.0.1:" + std::to_string(port);
    ::close(fd);
    throw_errno(msg);
  }

  int owned_fd = fd;  // -1 once closed, so the catch never double-closes
  try {
    std::string out = method + " " + target + " HTTP/1.1\r\n";
    out += "Host: 127.0.0.1:" + std::to_string(port) + "\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    for (const auto& [name, value] : headers) out += name + ": " + value + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += body;
    send_all(fd, out.data(), out.size());

    // Connection: close framing — the response is everything until EOF.
    std::string in;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("http: recv failed");
      }
      if (n == 0) break;
      in.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(owned_fd);
    owned_fd = -1;

    const std::size_t header_end = in.find("\r\n\r\n");
    if (header_end == std::string::npos || in.rfind("HTTP/1.", 0) != 0) {
      throw HttpError("http: malformed response");
    }
    HttpResponse resp;
    resp.status = std::atoi(in.c_str() + in.find(' ') + 1);
    const std::size_t ct = lowercase(in.substr(0, header_end)).find("content-type:");
    if (ct != std::string::npos) {
      const std::size_t eol = in.find("\r\n", ct);
      resp.content_type = trim(in.substr(ct + 13, eol - ct - 13));
    }
    resp.body = in.substr(header_end + 4);
    return resp;
  } catch (...) {
    if (owned_fd >= 0) ::close(owned_fd);
    throw;
  }
}

}  // namespace rh::serve
