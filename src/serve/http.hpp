// A minimal embedded HTTP/1.1 layer over plain BSD sockets — just enough
// protocol for the campaign service's JSON API and its tests.
//
// Scope (deliberate): loopback only, one request per connection
// (Connection: close), no TLS, no chunked transfer, no pipelining. Requests
// are bounded (64 KiB of headers, 8 MiB of body) and reads time out, so a
// stalled client cannot wedge the server. Anything fancier belongs in a
// real frontend; the service's value is the scheduler and the cache behind
// this socket, not the socket itself.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/error.hpp"

namespace rh::serve {

/// Malformed or over-limit HTTP input from a client (mapped to a 400).
class HttpError : public common::Error {
public:
  using common::Error::Error;
};

struct HttpRequest {
  std::string method;   ///< GET / POST / DELETE / ...
  std::string target;   ///< origin-form path, e.g. "/jobs/3/report"
  /// Header names lowercased; last value wins on duplicates.
  std::map<std::string, std::string> headers;
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::map<std::string, std::string> extra_headers;  ///< e.g. Retry-After
  std::string body;
};

/// A listening TCP socket bound to 127.0.0.1. Port 0 asks the kernel for an
/// ephemeral port; port() reports what was actually bound.
class TcpListener {
public:
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Accepts one connection, waiting at most `timeout_ms`. Returns the
  /// connected fd, or -1 on timeout / after close(). The caller owns the fd
  /// (close with close_fd).
  [[nodiscard]] int accept_connection(int timeout_ms);

  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// Stops accepting; subsequent accept_connection calls return -1.
  void close();

private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Reads one request from a connected socket. Throws HttpError on malformed
/// or over-limit input, common::ConfigError on socket failure/timeout.
[[nodiscard]] HttpRequest read_http_request(int fd);

/// Writes a complete HTTP/1.1 response (status line, headers incl.
/// Content-Length and Connection: close, body).
void write_http_response(int fd, const HttpResponse& response);

void close_fd(int fd);

/// Blocking loopback client for tests and tools: one request, one response.
[[nodiscard]] HttpResponse http_request(std::uint16_t port, const std::string& method,
                                        const std::string& target, const std::string& body = "",
                                        const std::map<std::string, std::string>& headers = {});

}  // namespace rh::serve
