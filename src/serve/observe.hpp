// The service observability plane: the server-level metrics registry, the
// per-request access log, and the flight recorder.
//
// PRs 1–6 made *campaigns* observable (counters, spans, metrics streams);
// this module does the same for the daemon that schedules them. Three
// pieces, all owned by serve::Server and shared with the scheduler:
//
//   ServiceMetrics — an internally-locked MetricsRegistry holding the
//     serve.* catalogue (HTTP latency, queue wait, steal wait, shard
//     execution, cache lookups — all FixedHistograms — plus HTTP status
//     counters). Registered up front so GET /metricsz exposes every series
//     from the first scrape, traffic or not.
//
//   AccessLog — one JSONL line per HTTP request (method, path, status,
//     tenant, bytes, wall-µs, outcome), written through DurableFile with
//     the CRC-32 v2 line framing, so the tail is torn-safe and rot is
//     detectable. Storage-failure policy mirrors the metrics stream: logs
//     are advisory, so the first StorageError sends the log dark instead
//     of unwinding into the accept loop.
//
//   FlightRecorder — a fixed-size in-memory ring of recent service events
//     (admissions, rejections, steals, retries, storage errors, cancels,
//     finalizes, recoveries, fatals). The post-mortem "black box": dumped
//     to <data-dir>/flightrec-<ts>.jsonl on SIGQUIT and on fatal errors,
//     and served on demand at GET /debugz/flightrec.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "resilience/storage.hpp"
#include "telemetry/metrics.hpp"

namespace rh::serve {

/// The server-level metrics registry, internally locked (HTTP threads, rig
/// threads, and the /metricsz renderer all touch it). The serve.* catalogue
/// is registered at construction so snapshots are shape-stable from the
/// first scrape; observing an unregistered histogram name is a programming
/// error (it would silently get 1-bin bounds) and asserts in debug.
class ServiceMetrics {
public:
  ServiceMetrics();

  void add(const std::string& name, std::uint64_t n = 1);
  void set_gauge(const std::string& name, double value);
  /// Observes into a histogram registered by the constructor.
  void observe(const std::string& name, double value);
  [[nodiscard]] telemetry::MetricsSnapshot snapshot() const;

private:
  mutable std::mutex mutex_;
  telemetry::MetricsRegistry registry_;
};

/// One access-log line's worth of request accounting.
struct AccessRecord {
  std::string method;   ///< "-" when the request never parsed
  std::string path;     ///< origin-form target (query included), "-" unparsed
  std::string tenant;   ///< X-Tenant header, "anonymous" when absent
  std::string outcome;  ///< ok | rejected | client-error | server-error | malformed
  int status = 0;
  std::uint64_t bytes = 0;  ///< response body bytes
  double wall_us = 0.0;     ///< request wall time, µs
};

/// Outcome classification by status code: 2xx/3xx "ok", 429/503 "rejected"
/// (admission control, retryable), other 4xx "client-error", 5xx
/// "server-error". Malformed framing never reaches a status-based outcome —
/// the caller passes "malformed" explicitly.
[[nodiscard]] const char* access_outcome(int status);

/// The record as a compact JSON document, keys sorted (the rh-access-log/v1
/// line schema pinned by tests/golden_contract_test.cpp).
[[nodiscard]] std::string access_record_json(const AccessRecord& record);

/// Appending JSONL access-log writer (CRC-framed lines through
/// DurableFile). Internally locked; degrades to dark on the first storage
/// failure — see the file comment.
class AccessLog {
public:
  /// Opens `path` for appending (a restarted server continues its log).
  /// `injector` may be null and must outlive the log. Throws ConfigError
  /// when the path cannot be opened.
  explicit AccessLog(const std::string& path,
                     resilience::StorageFaultInjector* injector = nullptr);

  void record(const AccessRecord& record);

  [[nodiscard]] bool degraded() const;
  [[nodiscard]] std::string storage_error() const;
  [[nodiscard]] const std::string& path() const;

private:
  mutable std::mutex mutex_;
  std::unique_ptr<resilience::DurableFile> file_;
  std::string path_;
  std::string storage_error_;
};

/// Everything the flight recorder knows how to remember.
enum class ServiceEventKind : std::uint8_t {
  kAdmit = 0,      ///< job admitted (POST /jobs -> 201)
  kReject,         ///< admission refused (400/429/503)
  kSteal,          ///< a rig stole a shard from a peer's deque
  kRetry,          ///< a shard attempt failed transiently and will re-run
  kStorageError,   ///< a durable write failed (journal, descriptor, report)
  kCancel,         ///< DELETE /jobs/<id> accepted
  kFinalize,       ///< a job reached a terminal state
  kRecover,        ///< boot recovery replayed a job descriptor
  kFatal,          ///< unexpected exception answered with a 500
  kDump,           ///< an operator-triggered dump (SIGQUIT) — marks why
};

[[nodiscard]] const char* to_string(ServiceEventKind kind);

/// One ring entry. `t_ms` is wall time since the recorder was constructed
/// (= server start), so a dump reads as a relative timeline.
struct ServiceEvent {
  std::uint64_t seq = 0;
  double t_ms = 0.0;
  ServiceEventKind kind = ServiceEventKind::kAdmit;
  std::uint64_t job = 0;  ///< 0 when the event is not job-scoped
  std::string tenant;
  std::string detail;
};

/// Fixed-capacity ring of recent service events, internally locked. record()
/// is cheap (one lock, one slot overwrite) so it can sit on the admission
/// and scheduler paths; dumps snapshot the ring oldest-first.
class FlightRecorder {
public:
  explicit FlightRecorder(std::size_t capacity);

  void record(ServiceEventKind kind, std::uint64_t job, std::string_view tenant,
              std::string detail);

  /// Events still in the ring, oldest first.
  [[nodiscard]] std::vector<ServiceEvent> events() const;
  /// Total events ever recorded (recorded() - capacity, floored at 0, were
  /// dropped from the ring).
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// The dump document: an rh-flightrec/v1 header line, then one JSON line
  /// per ring event, oldest first.
  [[nodiscard]] std::string dump_jsonl() const;

  /// Writes dump_jsonl() to `dir`/flightrec-<unix-seconds>-<n>.jsonl
  /// (atomic replace; <n> disambiguates dumps within one second). Returns
  /// the path, or "" when the write failed — a post-mortem dump must never
  /// take the server down with it.
  [[nodiscard]] std::string dump_to_dir(const std::string& dir) const;

private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::uint64_t seq_ = 0;            ///< next sequence number == total recorded
  std::vector<ServiceEvent> ring_;   ///< slot = seq % capacity
  mutable std::uint64_t dumps_ = 0;  ///< dump serial for unique filenames
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace rh::serve
