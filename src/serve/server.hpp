// The campaign service: admission control, the HTTP surface, durable job
// state, and restart recovery, stitched over the scheduler and the cache.
//
// One Server owns one data directory. Every admitted job writes its
// descriptor (job-<id>.json) there before it is queued, and its journal as
// shards complete — so a SIGKILL at any instant loses at most the shard in
// flight. start() replays the directory: terminal jobs come back queryable
// (and their journals warm the result cache); queued/running jobs are
// re-enqueued with exactly their missing shards, the same resume semantics
// as `--checkpoint --resume` on the bench CLI.
//
// Admission control, in order:
//   draining            -> 503 (SIGTERM was received; no new work)
//   malformed config    -> 400 (strict parse: unknown keys rejected)
//   server queue full   -> 429 + Retry-After (active jobs >= queue_limit)
//   tenant over quota   -> 429 + Retry-After (active jobs per X-Tenant)
//
// The HTTP surface (all JSON; one request per connection):
//   POST   /jobs                submit a config, returns the job status
//   GET    /jobs                every job, oldest first
//   GET    /jobs/<id>           one job's status
//   DELETE /jobs/<id>           cancel (idempotent; terminal jobs conflict)
//   GET    /jobs/<id>/report    rh-run-report/v1 (404 until finalized)
//   GET    /jobs/<id>/results   journaled records, JSONL in shard order
//   GET    /jobs/<id>/stream    rh-metrics-stream/v1 so far
//   GET    /healthz             liveness
//   GET    /statz               server counters (cache, scheduler, jobs,
//                               per-rig utilization, per-tenant accounting)
//   GET    /metricsz            Prometheus text exposition of the same
//   GET    /debugz/flightrec    recent service events, JSONL
//
// Observability (PR 9): every served request flows through
// handle_observed(), which wraps handle() with the HTTP-latency histogram,
// status-class counters, and one JSONL access-log line (torn-tail-safe via
// DurableFile). The read-only observability endpoints (/healthz, /statz,
// /metricsz, /debugz/*) are excluded from the serve.http_* metrics so that
// scraping never moves the metrics being scraped: for a fixed sequence of
// job-API requests, consecutive /metricsz scrapes are byte-identical.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "resilience/retry.hpp"
#include "resilience/storage.hpp"
#include "serve/cache.hpp"
#include "serve/http.hpp"
#include "serve/job.hpp"
#include "serve/observe.hpp"
#include "serve/scheduler.hpp"

namespace rh::serve {

class Server {
public:
  struct Options {
    std::uint16_t port = 0;       ///< 0 = OS-assigned ephemeral port
    std::string data_dir = ".";   ///< job descriptors, journals, reports
    unsigned rigs = 2;            ///< simulated-rig pool size
    unsigned retries = 1;         ///< per-shard transient retry budget
    std::size_t queue_limit = 8;  ///< max active (queued+running) jobs
    std::size_t tenant_quota = 4; ///< max active jobs per tenant
    resilience::RetryPolicy retry_policy;
    std::uint64_t stream_cycle_cadence = 1ull << 24;
    /// Disk fault injection for every job's durable outputs (journal,
    /// stream, descriptor, reports). Each job draws independent fault
    /// streams seeded from (storage_plan.seed, job id). Storage failures
    /// degrade jobs (state failed, reason "storage: ...") and flip
    /// /healthz to degraded — they never crash the server or wedge a rig.
    resilience::StorageFaultPlan storage_plan;
    /// Access-log path; empty means <data_dir>/access-log.jsonl. Opened
    /// appending in start(); an open failure degrades (no log) rather than
    /// refusing to start.
    std::string access_log;
    /// Flight-recorder ring capacity (events kept for post-mortem dumps).
    std::size_t flightrec_size = 256;
  };

  /// Lifetime request/shard accounting for one tenant (X-Tenant header).
  struct TenantStats {
    std::uint64_t submitted = 0;   ///< jobs admitted (201)
    std::uint64_t rejected = 0;    ///< submissions refused (400/429/503)
    std::uint64_t completed = 0;   ///< jobs that reached a terminal state
    std::uint64_t shards_run = 0;  ///< shards simulated for this tenant
    std::uint64_t cache_hits = 0;  ///< shards served from the result cache
  };

  explicit Server(Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Recovers jobs from the data dir, starts the rig pool, binds the
  /// listener. Throws common::ConfigError on bind failure or a corrupt
  /// descriptor it cannot skip.
  void start();

  /// Graceful drain: stop admitting (503), let in-flight shards journal,
  /// stop the rigs. Idempotent; serve() returns after this.
  void drain();

  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Accepts and serves connections, one request per connection, until
  /// `should_stop()` turns true (polled between accepts) or drain().
  void serve(const std::function<bool()>& should_stop);

  /// Routes one request — also the unit-test entry point (no sockets).
  [[nodiscard]] HttpResponse handle(const HttpRequest& req);

  /// handle() plus the observability wrapper: exception-to-status mapping
  /// (HttpError -> 400, anything else -> 500 + flight-recorder dump), the
  /// HTTP latency histogram and status-class counters, and one access-log
  /// line. What serve() actually calls per request; also the test entry
  /// point for instrumentation assertions. Never throws.
  [[nodiscard]] HttpResponse handle_observed(const HttpRequest& req);

  [[nodiscard]] std::string statz_json();

  /// The GET /metricsz body: the serve.* registry in Prometheus text
  /// exposition format, followed by the point-in-time job/cache/scheduler
  /// series and the per-tenant and per-rig labeled series. Deterministic:
  /// for a fixed sequence of job-API requests, repeated scrapes are
  /// byte-identical (observability endpoints never self-instrument, and
  /// wall-clock-valued series live in /statz only).
  [[nodiscard]] std::string metricsz_text();

  /// Dumps the flight recorder to <data_dir>/flightrec-<ts>-<n>.jsonl.
  /// Returns the path, or "" when the write failed. `reason` is recorded as
  /// the dump trigger ("sigquit", "fatal", ...) before dumping.
  std::string dump_flightrec(const std::string& reason);

  [[nodiscard]] ServiceMetrics& metrics() { return metrics_; }
  [[nodiscard]] FlightRecorder& flightrec() { return flightrec_; }
  /// Null until start() (or when the log could not be opened).
  [[nodiscard]] const AccessLog* access_log() const { return access_log_.get(); }

  /// Liveness + storage health: ok is always true while serving; degraded
  /// flips when any durable write has failed (descriptor, journal, stream,
  /// or report), with the total in storage_errors.
  [[nodiscard]] std::string healthz_json();

private:
  /// One tenant's row in /statz and /metricsz: lifetime stats plus the
  /// instantaneous active-job count.
  struct TenantRow {
    std::string tenant;
    std::size_t active = 0;
    TenantStats stats;
  };

  /// Everything /statz and /metricsz render, gathered once under the locks
  /// so the two surfaces always agree.
  struct StatsSnapshot {
    std::size_t active = 0;
    std::size_t queued = 0;
    std::size_t running = 0;
    std::size_t done = 0;
    std::size_t failed = 0;
    std::size_t cancelled = 0;
    std::uint64_t shards_cached = 0;
    std::uint64_t storage_errors = 0;
    bool draining = false;
    double uptime_ms = 0.0;
    std::vector<TenantRow> tenants;  ///< sorted by tenant name
    std::vector<Scheduler::RigStatus> rigs;
  };

  [[nodiscard]] std::string job_path(std::uint64_t id, const char* suffix) const;
  [[nodiscard]] std::shared_ptr<Job> find_job(std::uint64_t id);
  [[nodiscard]] StatsSnapshot stats_snapshot();

  /// Instrumentation tail shared by handle_observed() and the
  /// malformed-framing path in serve(): counters + histogram (job-API
  /// requests only) and the access-log line (every request).
  void note_request(const std::string& method, const std::string& target,
                    const std::string& tenant, const HttpResponse& resp, double wall_us,
                    const char* outcome);

  HttpResponse submit(const HttpRequest& req);
  HttpResponse list_jobs();
  HttpResponse cancel_job(std::uint64_t id);
  HttpResponse results_response(const std::shared_ptr<Job>& job);
  static HttpResponse file_response(const std::string& path, const char* content_type);

  /// Builds a Job around a parsed config: paths, spec, counters, aggregate
  /// sink. Shared by submit and recovery.
  [[nodiscard]] std::shared_ptr<Job> make_job(std::uint64_t id, const std::string& tenant,
                                              CampaignConfig config);
  /// Fresh submission: open journal + stream, probe the cache, journal the
  /// cache-served shards.
  void prepare_fresh(Job& job);
  /// Restart path: restore journaled shards (as skipped), reopen the
  /// journal for appending, fresh stream file.
  void prepare_resumed(Job& job);
  void warm_cache_from_journal(Job& job);
  void persist_meta(Job& job);
  void recover();
  void on_finalized(const std::shared_ptr<Job>& job);

  Options options_;
  // Observability members precede the scheduler: its Options carry raw
  // pointers to them, so they must construct first and destruct last.
  ServiceMetrics metrics_;
  FlightRecorder flightrec_;
  std::unique_ptr<resilience::StorageFaultInjector> access_injector_;
  std::unique_ptr<AccessLog> access_log_;
  std::chrono::steady_clock::time_point started_;
  ResultCache cache_;
  Scheduler scheduler_;
  std::unique_ptr<TcpListener> listener_;
  std::uint16_t port_ = 0;

  std::mutex mutex_;  ///< guards jobs_, next_id_, draining_, tenants_
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::map<std::string, TenantStats> tenants_;
  std::uint64_t next_id_ = 1;
  bool draining_ = false;

  std::atomic<std::uint64_t> jobs_submitted_{0};
  std::atomic<std::uint64_t> jobs_rejected_{0};  ///< 429s + 503s
  std::atomic<std::uint64_t> jobs_cache_hit_{0};  ///< admitted fully from cache
  /// Descriptor writes that failed (job-level losses live in each job's
  /// result.storage_errors; healthz/statz sum both).
  std::atomic<std::uint64_t> storage_errors_{0};
};

}  // namespace rh::serve
