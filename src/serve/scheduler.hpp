// The work-stealing rig pool: a fixed set of simulated rigs multiplexed
// over every admitted job's shards.
//
// Topology: one deque of (job, shard) tasks per rig under a single pool
// lock (a handful of rigs, millisecond-to-minute tasks — contention is
// nil; the deques exist for placement, not for lock-freedom). enqueue()
// deals a job's pending shards round-robin across the deques; a rig pops
// its own deque from the front and, when empty, steals from the back of a
// peer's, so one giant job spreads over all rigs yet a small job landing
// later still starts immediately on whichever rig frees up first.
//
// Execution of one task replicates Campaign::run()'s inner worker loop
// move for move — same counter updates, same span tree, same retry/fatal
// split, same journal append under the job lock — because the service's
// contract is that a job's deterministic report is byte-identical to the
// bench CLI path. Where Campaign keeps per-worker state for the lifetime
// of one run, a rig keeps it per *attachment*: the stretch of consecutive
// tasks it runs for one job. Switching jobs (or going idle) retires the
// attachment, folding the rig's host profile, telemetry sink, span sheet,
// and fault-injector stats into the job under the job's mutex. A job
// finalizes when its last shard has completed AND its last rig has
// retired — so nothing is ever absorbed twice and nothing is missing.
//
// Drain: stop() lets in-flight tasks finish (and journal), then joins the
// rig threads. Unfinished jobs keep their journals; restart recovery
// re-enqueues exactly the missing shards.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "resilience/retry.hpp"
#include "serve/cache.hpp"
#include "serve/job.hpp"
#include "serve/observe.hpp"

namespace rh::serve {

class Scheduler {
public:
  struct Options {
    unsigned rigs = 2;       ///< pool size (worker threads / simulated rigs)
    unsigned retries = 1;    ///< per-shard transient-failure retry budget
    resilience::RetryPolicy retry_policy;  ///< per-host transport retries
    /// Device cycles between a job's per-rig metrics-stream samples.
    std::uint64_t stream_cycle_cadence = 1ull << 24;
    /// Optional service observability hooks (owned by the server, must
    /// outlive the scheduler). When set, the pool observes queue-wait,
    /// steal-wait, and shard-execution histograms and records steal /
    /// retry / storage-error events in the flight recorder.
    ServiceMetrics* metrics = nullptr;
    FlightRecorder* flightrec = nullptr;
  };

  /// One rig's lifetime accounting, as reported by /statz. `busy_ms`
  /// includes the in-flight task's elapsed time; `shard`/`job` describe the
  /// current claim (-1/0 when idle).
  struct RigStatus {
    double busy_ms = 0.0;
    std::uint64_t done = 0;
    std::uint64_t steals = 0;
    std::int64_t shard = -1;
    std::uint64_t job = 0;
  };

  Scheduler(Options options, ResultCache& cache);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Fires (outside every lock) each time a job reaches a terminal state.
  void set_on_finalized(std::function<void(const std::shared_ptr<Job>&)> cb);

  /// Starts the rig threads. Call once, before the first enqueue.
  void start();

  /// Queues every not-yet-done shard of `job`. The job must already be
  /// prepared (journal/stream writers open, counters registered, cached
  /// shards marked done). A job whose shards are all done is finalized
  /// inline, never queued.
  void enqueue(const std::shared_ptr<Job>& job);

  /// Graceful drain: finish (and journal) in-flight tasks, then stop.
  /// Queued-but-unstarted tasks are abandoned (their jobs resume on
  /// restart). Idempotent.
  void stop();

  /// Tasks queued but not yet claimed by a rig.
  [[nodiscard]] std::size_t queue_depth() const;

  [[nodiscard]] unsigned rigs() const { return options_.rigs; }
  /// Shards actually simulated (cache-served shards never reach a rig).
  [[nodiscard]] std::uint64_t shards_run() const { return shards_run_.load(); }
  /// Shards a rig stole from a peer's deque.
  [[nodiscard]] std::uint64_t shards_stolen() const { return shards_stolen_.load(); }
  /// Per-rig accounting snapshot, one entry per rig in pool order.
  [[nodiscard]] std::vector<RigStatus> rig_status() const;

private:
  struct Task {
    std::shared_ptr<Job> job;
    std::uint64_t shard = 0;
    /// When the task entered a deque — queue-wait is measured to the claim.
    std::chrono::steady_clock::time_point enqueued;
    bool stolen = false;  ///< set by pop_task when claimed from a peer
  };

  /// The mutable side of RigStatus, guarded by the pool mutex_ (updated at
  /// the claim/completion points where rig_loop already holds it).
  struct RigStats {
    double busy_ms = 0.0;
    std::uint64_t done = 0;
    std::uint64_t steals = 0;
    std::int64_t shard = -1;
    std::uint64_t job = 0;
    std::chrono::steady_clock::time_point claim;
  };

  /// One rig's per-attachment state (see file comment).
  struct Rig {
    std::shared_ptr<Job> job;  ///< current attachment, null when detached
    std::unique_ptr<bender::BenderHost> host;
    std::unique_ptr<telemetry::Telemetry> sink;
    std::unique_ptr<resilience::FaultInjector> injector;
    std::unique_ptr<core::Characterizer> characterizer;
    profiling::Profile profile;   ///< campaign-level phases this attachment
    telemetry::SpanSheet sheet;   ///< spans this attachment
  };

  void rig_loop(unsigned rig_index);
  bool pop_task(unsigned rig_index, Task& task);  ///< pool lock held
  void attach(Rig& rig, const std::shared_ptr<Job>& job);
  void scrap_hardware(Rig& rig);  ///< absorb + destroy host/sink/injector
  void retire(Rig& rig);          ///< end the attachment; may finalize the job
  void run_task(unsigned rig_index, Rig& rig, const Task& task);
  void build_rig(Rig& rig, Job& job);
  void finalize_if_complete(const std::shared_ptr<Job>& job);

  Options options_;
  ResultCache& cache_;
  std::atomic<std::uint64_t> shards_run_{0};
  std::atomic<std::uint64_t> shards_stolen_{0};
  std::function<void(const std::shared_ptr<Job>&)> on_finalized_;

  mutable std::mutex mutex_;  ///< guards deques_ + stop_ + rig_stats_
  std::condition_variable cv_;
  std::vector<std::deque<Task>> deques_;
  std::vector<RigStats> rig_stats_;
  std::size_t next_deque_ = 0;  ///< round-robin dealing cursor
  bool stop_ = false;
  std::vector<std::thread> rigs_;
};

}  // namespace rh::serve
