#include "serve/scheduler.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/row_map.hpp"
#include "profiling/profile.hpp"

namespace rh::serve {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Appends one wall sample for `job` (caller holds job.mutex): counter
/// deltas since the last sample plus per-rig utilization — the same shape
/// Campaign::run()'s wall-cadence monitor emits, sampled at shard
/// completions instead of on a timer.
void emit_wall_sample(Job& job) {
  if (job.stream == nullptr) return;
  const telemetry::CounterValues now_values = telemetry::counter_values(job.metrics);
  telemetry::CounterValues deltas;
  for (const auto& [name, value] : now_values) {
    const auto it = job.last_wall.find(name);
    const std::uint64_t before = it != job.last_wall.end() ? it->second : 0;
    if (value > before) deltas[name] = value - before;
  }
  job.last_wall = now_values;
  std::vector<telemetry::StreamWorkerStatus> workers;
  workers.reserve(job.wstatus.size());
  const auto snap_now = std::chrono::steady_clock::now();
  for (const auto& s : job.wstatus) {
    telemetry::StreamWorkerStatus w;
    w.busy_ms = s.busy_ms;
    if (s.shard >= 0) {
      w.busy_ms += std::chrono::duration<double, std::milli>(snap_now - s.claim).count();
    }
    w.done = s.done;
    w.shard = s.shard;
    workers.push_back(w);
  }
  job.stream->append(telemetry::format_wall_sample(ms_since(job.epoch), deltas, workers));
}

}  // namespace

Scheduler::Scheduler(Options options, ResultCache& cache)
    : options_(std::move(options)), cache_(cache) {
  options_.rigs = std::max(1u, options_.rigs);
  options_.stream_cycle_cadence = std::max<std::uint64_t>(1, options_.stream_cycle_cadence);
  deques_.resize(options_.rigs);
  rig_stats_.resize(options_.rigs);
}

Scheduler::~Scheduler() { stop(); }

void Scheduler::set_on_finalized(std::function<void(const std::shared_ptr<Job>&)> cb) {
  on_finalized_ = std::move(cb);
}

void Scheduler::start() {
  rigs_.reserve(options_.rigs);
  for (unsigned r = 0; r < options_.rigs; ++r) {
    rigs_.emplace_back([this, r] { rig_loop(r); });
  }
}

void Scheduler::enqueue(const std::shared_ptr<Job>& job) {
  std::vector<std::uint64_t> pending;
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    for (std::size_t i = 0; i < job->done.size(); ++i) {
      if (job->done[i] == 0) pending.push_back(i);
    }
  }
  if (pending.empty()) {
    // Fully cache-served (or resumed complete): there is nothing for a rig
    // to do, so the enqueue itself completes the job.
    finalize_if_complete(job);
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const std::uint64_t shard : pending) {
      deques_[next_deque_].push_back(Task{job, shard, now, /*stolen=*/false});
      next_deque_ = (next_deque_ + 1) % deques_.size();
    }
  }
  cv_.notify_all();
}

void Scheduler::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : rigs_) t.join();
  rigs_.clear();
}

std::size_t Scheduler::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t depth = 0;
  for (const auto& dq : deques_) depth += dq.size();
  return depth;
}

std::vector<Scheduler::RigStatus> Scheduler::rig_status() const {
  const auto now = std::chrono::steady_clock::now();
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<RigStatus> out;
  out.reserve(rig_stats_.size());
  for (const RigStats& s : rig_stats_) {
    RigStatus r;
    r.busy_ms = s.busy_ms;
    if (s.shard >= 0) {
      r.busy_ms += std::chrono::duration<double, std::milli>(now - s.claim).count();
    }
    r.done = s.done;
    r.steals = s.steals;
    r.shard = s.shard;
    r.job = s.job;
    out.push_back(r);
  }
  return out;
}

bool Scheduler::pop_task(unsigned rig_index, Task& task) {
  auto& own = deques_[rig_index];
  if (!own.empty()) {
    task = std::move(own.front());
    own.pop_front();
    return true;
  }
  // Steal from the back of a peer's deque: the owner works the front, so
  // thief and owner only collide when one task is left.
  for (std::size_t k = 1; k < deques_.size(); ++k) {
    auto& victim = deques_[(rig_index + k) % deques_.size()];
    if (!victim.empty()) {
      task = std::move(victim.back());
      victim.pop_back();
      task.stolen = true;
      shards_stolen_.fetch_add(1);
      rig_stats_[rig_index].steals += 1;
      return true;
    }
  }
  return false;
}

void Scheduler::rig_loop(unsigned rig_index) {
  Rig rig;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    Task task;
    while (!pop_task(rig_index, task)) {
      if (stop_) {
        lock.unlock();
        retire(rig);
        return;
      }
      if (rig.job != nullptr) {
        // Going idle ends the attachment — the job must not wait for this
        // rig's next claim to fold in state and finalize.
        lock.unlock();
        retire(rig);
        lock.lock();
        continue;  // something may have been enqueued while retiring
      }
      cv_.wait(lock);
    }
    // Claim accounting while the pool lock is still held: the wait the task
    // just finished is the queue-wait (and, for a stolen task, also the
    // steal-wait — "how stale was the work the thief rescued").
    const auto claim = std::chrono::steady_clock::now();
    const double wait_ms =
        std::chrono::duration<double, std::milli>(claim - task.enqueued).count();
    rig_stats_[rig_index].shard = static_cast<std::int64_t>(task.shard);
    rig_stats_[rig_index].job = task.job->id;
    rig_stats_[rig_index].claim = claim;
    lock.unlock();
    if (options_.metrics != nullptr) {
      options_.metrics->observe("serve.queue_wait_ms", wait_ms);
      if (task.stolen) options_.metrics->observe("serve.steal_wait_ms", wait_ms);
    }
    if (task.stolen && options_.flightrec != nullptr) {
      options_.flightrec->record(ServiceEventKind::kSteal, task.job->id, task.job->tenant,
                                 "rig " + std::to_string(rig_index) + " stole shard " +
                                     std::to_string(task.shard));
    }
    if (!task.job->cancel.load(std::memory_order_relaxed)) {
      if (rig.job != task.job) {
        retire(rig);
        attach(rig, task.job);
      }
      run_task(rig_index, rig, task);
    }
    lock.lock();
    rig_stats_[rig_index].busy_ms +=
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - claim)
            .count();
    rig_stats_[rig_index].done += 1;
    rig_stats_[rig_index].shard = -1;
    rig_stats_[rig_index].job = 0;
  }
}

void Scheduler::attach(Rig& rig, const std::shared_ptr<Job>& job) {
  rig.job = job;
  const std::lock_guard<std::mutex> lock(job->mutex);
  ++job->rigs_attached;
}

void Scheduler::build_rig(Rig& rig, Job& job) {
  // Same bring-up as Campaign's default host factory: settle fault-free,
  // arm the injector only for the measurement phase.
  rig.host = std::make_unique<bender::BenderHost>(job.spec.device);
  if (job.spec.settle_thermal) {
    rig.host->set_chip_temperature(job.spec.temperature_c);
  } else {
    rig.host->device().set_temperature(job.spec.temperature_c);
  }
  if (job.aggregate != nullptr) {
    rig.sink = std::make_unique<telemetry::Telemetry>(job.aggregate->config());
    rig.host->set_telemetry(rig.sink.get());
  }
  resilience::FaultPlan plan = to_fault_plan(job.config);
  if (plan.enabled()) {
    plan.seed = common::hash_coords(plan.seed, 0x819u, job.rig_serial.fetch_add(1));
    rig.injector = std::make_unique<resilience::FaultInjector>(std::move(plan));
    rig.host->set_fault_injector(rig.injector.get());
  }
  rig.host->set_retry_policy(options_.retry_policy);
  rig.characterizer = std::make_unique<core::Characterizer>(
      *rig.host, core::RowMap::from_device(rig.host->device()), job.spec.characterizer);
}

void Scheduler::scrap_hardware(Rig& rig) {
  if (rig.job == nullptr) return;
  if (rig.host == nullptr && rig.sink == nullptr && rig.injector == nullptr) return;
  Job& job = *rig.job;
  {
    const std::lock_guard<std::mutex> lock(job.mutex);
    if (rig.host != nullptr) rig.profile.merge_from(rig.host->profile());
    if (rig.sink != nullptr && job.aggregate != nullptr) job.aggregate->absorb(*rig.sink);
    if (rig.injector != nullptr) {
      const auto& stats = rig.injector->stats();
      job.metrics.counter("resilience.injected").add(stats.injected);
      job.metrics.counter("resilience.recovered").add(stats.recovered);
      job.metrics.counter("resilience.aborted").add(stats.aborted);
    }
  }
  rig.characterizer.reset();
  rig.injector.reset();
  rig.host.reset();
  rig.sink.reset();
}

void Scheduler::retire(Rig& rig) {
  if (rig.job == nullptr) return;
  scrap_hardware(rig);
  const std::shared_ptr<Job> job = std::move(rig.job);
  bool finalized_now = false;
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    job->profile.merge_from(rig.profile);
    job->spans.merge_from(rig.sheet);
    --job->rigs_attached;
    if (job->remaining == 0 && job->rigs_attached == 0 && job_state_active(job->state) &&
        !job->finalized) {
      finalize_job(*job);
      finalized_now = true;
    } else if (job->rigs_attached == 0 && !job_state_active(job->state) && !job->finalized) {
      // Cancelled while rigs were in flight: cancel_job left the writers
      // open (this rig's sampler may have been appending) — the last rig
      // out closes them, completing the on-disk record.
      job->journal.reset();
      job->stream.reset();
    }
  }
  rig = Rig{};
  if (finalized_now && on_finalized_) on_finalized_(job);
}

void Scheduler::finalize_if_complete(const std::shared_ptr<Job>& job) {
  bool finalized_now = false;
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    if (job->remaining == 0 && job->rigs_attached == 0 && job_state_active(job->state) &&
        !job->finalized) {
      finalize_job(*job);
      finalized_now = true;
    }
  }
  if (finalized_now && on_finalized_) on_finalized_(job);
}

void Scheduler::run_task(unsigned rig_index, Rig& rig, const Task& task) {
  Job& job = *task.job;
  const std::uint64_t i = task.shard;
  telemetry::MetricsStreamWriter* stream = nullptr;
  {
    const std::lock_guard<std::mutex> lock(job.mutex);
    if (job.done[i] != 0 || !job_state_active(job.state)) return;
    job.state = JobState::kRunning;
    // Read the stream writer under the lock, once: while this rig is
    // attached nobody resets job.stream (cancel_job defers closing to the
    // last retire()), so the pointer stays valid for the whole task.
    stream = job.stream.get();
    job.wstatus[rig_index].shard = static_cast<std::int64_t>(i);
    job.wstatus[rig_index].claim = std::chrono::steady_clock::now();
  }

  // From here down this mirrors Campaign::run()'s per-shard block exactly
  // (same spans, same counters, same retry/fatal split) — report
  // byte-identity with the bench path depends on it.
  telemetry::TraceContext ctx(rig.sheet, i, job.epoch);
  const std::uint64_t shard_span = ctx.open(telemetry::SpanKind::kShard, 0);

  std::vector<core::RowRecord> records;
  std::string error;
  bool ok = false;
  bool fatal = false;
  unsigned attempts_used = 0;
  double shard_wall_ms = 0.0;
  std::uint64_t shard_cycles = 0;
  for (unsigned attempt = 0; attempt <= options_.retries && !ok && !fatal; ++attempt) {
    if (attempt > 0) {
      {
        const std::lock_guard<std::mutex> lock(job.mutex);
        job.metrics.counter("campaign.shards_retried").add();
        ++job.result.shards_retried;
      }
      if (options_.flightrec != nullptr) {
        options_.flightrec->record(ServiceEventKind::kRetry, job.id, job.tenant,
                                   "shard " + std::to_string(i) + ": " + error);
      }
    }
    ++attempts_used;
    ctx.set_attempt(attempt + 1);
    const std::uint64_t attempt_span = ctx.open(telemetry::SpanKind::kAttempt, 0);
    const auto attempt_start = std::chrono::steady_clock::now();
    double build_ms = 0.0;
    std::uint64_t run_from = 0;
    bool running = false;
    std::unique_ptr<telemetry::MetricsSampler> sampler;
    try {
      if (rig.host == nullptr) {
        build_rig(rig, job);
        build_ms = ms_since(attempt_start);
        rig.profile.record(profiling::Phase::kRigBuild, rig.host->now(), build_ms);
      }
      rig.host->set_trace_context(&ctx);
      run_from = rig.host->now();
      if (stream != nullptr && rig.sink != nullptr) {
        sampler = std::make_unique<telemetry::MetricsSampler>(
            *stream, rig.sink->metrics(), options_.stream_cycle_cadence, i, attempt + 1,
            run_from);
        rig.host->set_cycle_sampler(sampler.get());
      }
      running = true;
      records = core::run_shard(*rig.characterizer, job.spec.shards[i]);
      ok = true;
    } catch (const common::TransientError& e) {
      error = e.what();
    } catch (const std::exception& e) {
      error = e.what();
      fatal = true;
    }
    const std::uint64_t run_cycles =
        (running && rig.host != nullptr) ? rig.host->now() - run_from : 0;
    if (rig.host != nullptr) {
      if (sampler != nullptr) sampler->finish(rig.host->now());
      rig.host->set_cycle_sampler(nullptr);
      rig.host->set_trace_context(nullptr);
    }
    ctx.close(attempt_span, run_cycles);
    const double attempt_ms = ms_since(attempt_start);
    rig.profile.record(profiling::Phase::kShardRun, run_cycles,
                       std::max(0.0, attempt_ms - build_ms));
    shard_wall_ms += attempt_ms;
    shard_cycles += run_cycles;
    if (!ok) scrap_hardware(rig);  // the host's state is suspect after a throw
  }

  ctx.close(shard_span, shard_cycles);

  if (options_.metrics != nullptr) options_.metrics->observe("serve.shard_exec_ms", shard_wall_ms);

  bool finished = false;
  {
    const std::lock_guard<std::mutex> lock(job.mutex);
    if (fatal) job.metrics.counter("campaign.shards_fatal").add();
    if (ok) {
      if (job.journal != nullptr) {
        try {
          const profiling::PhaseTimer timer(rig.profile, profiling::Phase::kCheckpoint);
          job.journal->append_shard(i, records, shard_wall_ms, attempts_used);
        } catch (const common::StorageError& e) {
          // The journal is gone; letting this unwind would kill the rig
          // thread. Degrade: keep results in memory, finalize marks the
          // job failed with the storage reason.
          job.journal.reset();
          job.journal_lost = true;
          ++job.result.storage_errors;
          if (job.result.storage_error.empty()) job.result.storage_error = e.what();
          if (options_.flightrec != nullptr) {
            options_.flightrec->record(ServiceEventKind::kStorageError, job.id, job.tenant,
                                       e.what());
          }
        }
      }
      cache_.insert(shard_cache_key(job.cache_prefix, job.spec.shards[i]), records);
      job.metrics.counter("campaign.records").add(records.size());
      job.result.per_shard[i] = std::move(records);
      job.result.timings.push_back(
          {i, shard_cycles, shard_wall_ms, attempts_used, telemetry::span_id(i, 0, 0)});
      job.metrics.histogram("campaign.shard_wall_ms", 0.0, 60000.0, 120).observe(shard_wall_ms);
      ++job.result.shards_run;
      job.metrics.counter("campaign.shards_done").add();
      shards_run_.fetch_add(1);
    } else {
      if (job.journal != nullptr) {
        try {
          job.journal->append_failure(i, attempts_used, error);
        } catch (const common::StorageError& e) {
          job.journal.reset();
          job.journal_lost = true;
          ++job.result.storage_errors;
          if (job.result.storage_error.empty()) job.result.storage_error = e.what();
          if (options_.flightrec != nullptr) {
            options_.flightrec->record(ServiceEventKind::kStorageError, job.id, job.tenant,
                                       e.what());
          }
        }
      }
      job.result.failures.push_back({i, error});
      job.metrics.counter("campaign.shards_failed").add();
    }
    job.wstatus[rig_index].busy_ms += ms_since(job.wstatus[rig_index].claim);
    ++job.wstatus[rig_index].done;
    job.wstatus[rig_index].shard = -1;
    job.done[i] = 1;
    --job.remaining;
    finished = job.remaining == 0;
    emit_wall_sample(job);
  }
  // The last shard retires the rig immediately: finalize must not wait for
  // this rig to go idle or switch jobs.
  if (finished) retire(rig);
}

}  // namespace rh::serve
