#include "serve/job.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "profiling/report.hpp"
#include "resilience/storage.hpp"

namespace rh::serve {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

std::string hash_hex(std::uint64_t h) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

JobState job_state_from_string(const std::string& text) {
  if (text == "queued") return JobState::kQueued;
  if (text == "running") return JobState::kRunning;
  if (text == "done") return JobState::kDone;
  if (text == "failed") return JobState::kFailed;
  if (text == "cancelled") return JobState::kCancelled;
  throw common::ConfigError("job descriptor: unknown state \"" + text + "\"");
}

void register_job_counters(Job& job) {
  // Mirror Campaign::run()'s registration set (and the histogram's bounds)
  // exactly: the deterministic report projection serializes these, so a
  // missing or extra metric would break report byte-identity with the
  // bench CLI path.
  job.metrics.counter("campaign.shards_total").add(job.spec.shards.size());
  job.metrics.counter("campaign.shards_done");
  job.metrics.counter("campaign.shards_skipped");
  job.metrics.counter("campaign.shards_failed");
  job.metrics.counter("campaign.shards_retried");
  job.metrics.counter("campaign.shards_fatal");
  job.metrics.counter("campaign.records");
  job.metrics.counter("resilience.injected");
  job.metrics.counter("resilience.recovered");
  job.metrics.counter("resilience.aborted");
  job.metrics.histogram("campaign.shard_wall_ms", 0.0, 60000.0, 120);
}

void finalize_job(Job& job) {
  if (job.finalized) return;
  job.finalized = true;

  std::sort(job.result.failures.begin(), job.result.failures.end(),
            [](const campaign::ShardFailure& a, const campaign::ShardFailure& b) {
              return a.shard < b.shard;
            });
  std::sort(job.result.timings.begin(), job.result.timings.end(),
            [](const profiling::ShardTiming& a, const profiling::ShardTiming& b) {
              return a.shard < b.shard;
            });
  job.result.elapsed_wall_ms = ms_since(job.epoch);
  job.result.jobs = static_cast<unsigned>(std::max<std::size_t>(1, job.wstatus.size()));

  // Root the span forest exactly the way Campaign::run() does.
  telemetry::Span root;
  root.id = telemetry::kCampaignSpanId;
  root.parent = 0;
  root.kind = telemetry::SpanKind::kCampaign;
  for (const auto& t : job.result.timings) root.end_cycle += t.device_cycles;
  root.end_wall_ms = job.result.elapsed_wall_ms;
  job.spans.add(root);
  job.spans.sort_canonical();

  if (job.stream != nullptr) {
    job.stream->append(telemetry::format_final_sample(
        ms_since(job.epoch), telemetry::counter_values(job.metrics),
        job.metrics.counter("campaign.shards_done").value(),
        job.metrics.counter("campaign.shards_failed").value(),
        job.metrics.counter("campaign.shards_skipped").value(),
        job.metrics.counter("campaign.shards_total").value()));
    // The stream going dark is advisory-telemetry loss: counted, surfaced
    // via /healthz, but never grounds to fail the job.
    if (job.stream->degraded()) {
      ++job.result.storage_errors;
      if (job.result.storage_error.empty()) {
        job.result.storage_error = job.stream->storage_error();
      }
    }
  }

  if (job.aggregate != nullptr) job.aggregate->metrics().merge_from(job.metrics);

  const profiling::RunReport report =
      campaign::build_report(job.config.label, job.spec, job.profile, job.spans, job.metrics,
                             job.result, job.aggregate.get());
  bool report_written = false;
  try {
    std::string text;
    {
      std::ostringstream os;
      profiling::write_report_json(os, report);
      os << '\n';
      text = os.str();
    }
    resilience::write_file_atomic(job.report_path, text, "job report",
                                  job.journal_injector.get());
    std::ostringstream os;
    profiling::write_report_json(os, report, /*include_wall=*/false);
    os << '\n';
    resilience::write_file_atomic(job.det_report_path, os.str(), "job report",
                                  job.journal_injector.get());
    report_written = true;
  } catch (const common::Error& e) {
    // finalize runs on rig threads: a report that cannot land must degrade
    // the job, never unwind into the scheduler.
    ++job.result.storage_errors;
    if (job.result.storage_error.empty()) job.result.storage_error = e.what();
  }

  // Close the writers: their destructors flush + fclose, so after finalize
  // the on-disk journal/stream are complete documents.
  job.journal.reset();
  job.stream.reset();

  if (!job.result.failures.empty()) {
    job.state = JobState::kFailed;
    job.error = std::to_string(job.result.failures.size()) + " of " +
                std::to_string(job.spec.shards.size()) + " shards failed; first: shard " +
                std::to_string(job.result.failures.front().shard) + ": " +
                job.result.failures.front().what;
  } else if (job.journal_lost || !report_written) {
    // The science completed but its durable record did not: a job whose
    // journal died or whose report never landed must not claim success.
    job.state = JobState::kFailed;
    job.error = "storage: " + (job.result.storage_error.empty()
                                   ? std::string("durable write failed")
                                   : job.result.storage_error);
  } else {
    job.state = JobState::kDone;
  }
}

std::string job_status_json(Job& job) {
  const std::uint64_t total = job.spec.shards.size();
  const std::uint64_t completed = job.result.shards_run + job.result.shards_skipped;
  const bool cache_hit = total > 0 && job.shards_cached == total;
  std::string out = "{";
  out += "\"cache_hit\":";
  out += cache_hit ? "true" : "false";
  out += ",\"config_hash\":\"" + hash_hex(job.hash) + "\"";
  out += ",\"error\":\"" + telemetry::json_escape(job.error) + "\"";
  out += ",\"id\":" + std::to_string(job.id);
  out += ",\"kind\":\"" + job.config.kind + "\"";
  out += ",\"label\":\"" + telemetry::json_escape(job.config.label) + "\"";
  out += ",\"records\":" +
         std::to_string(static_cast<std::uint64_t>(
             job.metrics.counter("campaign.records").value()));
  out += ",\"shards\":{\"cached\":" + std::to_string(job.shards_cached);
  out += ",\"done\":" + std::to_string(completed);
  out += ",\"failed\":" + std::to_string(job.result.failures.size());
  out += ",\"remaining\":" + std::to_string(job.remaining);
  out += ",\"total\":" + std::to_string(total) + "}";
  out += ",\"state\":\"" + std::string(to_string(job.state)) + "\"";
  out += ",\"tenant\":\"" + telemetry::json_escape(job.tenant) + "\"";
  out += "}";
  return out;
}

std::string job_meta_json(Job& job) {
  std::string out = "{";
  out += "\"config\":" + to_canonical_json(job.config);
  out += ",\"config_hash\":\"" + hash_hex(job.hash) + "\"";
  out += ",\"id\":" + std::to_string(job.id);
  out += ",\"schema\":\"rh-serve-job/v1\"";
  out += ",\"state\":\"" + std::string(to_string(job.state)) + "\"";
  out += ",\"tenant\":\"" + telemetry::json_escape(job.tenant) + "\"";
  out += "}";
  return out;
}

}  // namespace rh::serve
