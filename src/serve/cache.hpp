// The content-addressed result cache: measured RowRecords keyed by what was
// measured, not by which job asked.
//
// Keying is per *shard*, not per job: a shard's key is the FNV-1a hash of
// the sweep's physics prefix (campaign::sweep_fingerprint with the shard
// plan stripped — device, temperature, characterizer) concatenated with the
// shard's own content (site, row range, stride, mode, pattern, hammers) —
// deliberately *excluding* the shard's plan index. Two consequences:
//   * an identical resubmission (same config hash) hits on every shard and
//     is answered with zero simulation,
//   * a superset job (say, the same survey at half the stride, or more
//     channels) hits on exactly the shards whose work it shares with any
//     earlier job and only simulates the genuinely new ones, regardless of
//     where those shards landed in either plan.
//
// Safety rests on the same determinism contract as the journal: a shard's
// records are a pure function of (physics prefix, shard content), so serving
// cached bytes is indistinguishable from re-simulating.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "campaign/campaign.hpp"
#include "core/characterizer.hpp"
#include "core/shard.hpp"

namespace rh::serve {

/// The sweep's physics prefix: its canonical fingerprint with the shard
/// plan stripped. Compute once per job, feed to shard_cache_key per shard.
[[nodiscard]] std::string sweep_cache_prefix(const campaign::SweepSpec& spec);

/// Content key of one shard under a physics prefix (plan index excluded).
[[nodiscard]] std::uint64_t shard_cache_key(const std::string& prefix,
                                            const core::ShardSpec& shard);

/// Thread-safe map from shard content key to measured records. Grows
/// monotonically for the server's lifetime (a few KB per shard at survey
/// granularity); restart warm-up refills it from the journals on disk.
class ResultCache {
public:
  /// True and fills `records` on a hit; counts the lookup either way.
  bool lookup(std::uint64_t key, std::vector<core::RowRecord>& records);
  /// Stores a completed shard's records (first write wins; a duplicate
  /// insert of the same key is a no-op because the bytes are equal by the
  /// determinism contract).
  void insert(std::uint64_t key, const std::vector<core::RowRecord>& records);

  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;

private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::vector<core::RowRecord>> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace rh::serve
