#include "serve/server.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "campaign/journal.hpp"
#include "campaign/record_io.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "resilience/storage.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prometheus.hpp"

namespace rh::serve {

namespace {

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw common::ConfigError("cannot open file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

HttpResponse json_response(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.body = std::move(body);
  resp.body += '\n';
  return resp;
}

HttpResponse error_response(int status, const std::string& message) {
  return json_response(status, "{\"error\":\"" + telemetry::json_escape(message) + "\"}");
}

/// True iff `name` is exactly job-<digits>.json — the descriptor, not the
/// report/journal/stream siblings that share the prefix.
bool is_job_descriptor(const std::string& name, std::uint64_t& id) {
  if (name.rfind("job-", 0) != 0) return false;
  const std::string::size_type dot = name.find('.');
  if (dot == std::string::npos || name.substr(dot) != ".json") return false;
  const std::string digits = name.substr(4, dot - 4);
  if (digits.empty()) return false;
  for (const char c : digits) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  id = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

/// Storage loss never unwinds admission or recovery: count it on the job
/// and keep going (finalize decides whether the job can still claim done).
void note_job_storage_error(Job& job, const common::StorageError& e) {
  ++job.result.storage_errors;
  if (job.result.storage_error.empty()) job.result.storage_error = e.what();
}

/// The accounting identity of a request: the X-Tenant header, "anonymous"
/// when absent or empty.
std::string tenant_of(const HttpRequest& req) {
  const auto it = req.headers.find("x-tenant");
  if (it != req.headers.end() && !it->second.empty()) return it->second;
  return "anonymous";
}

/// The read-only observability endpoints are excluded from the serve.http_*
/// metrics so a scrape never moves the metrics it reads — that is what
/// makes consecutive /metricsz scrapes byte-identical.
bool is_observability_path(const std::string& path) {
  return path == "/healthz" || path == "/statz" || path == "/metricsz" ||
         path.rfind("/debugz/", 0) == 0;
}

double us_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Opens a job's metrics stream; a storage failure means the job simply
/// runs streamless (telemetry is advisory).
void open_stream(Job& job, std::size_t n, const Server::Options& options) {
  try {
    job.stream = std::make_unique<telemetry::MetricsStreamWriter>(
        job.stream_path,
        telemetry::MetricsStreamHeader{job.spec.device.fault.seed, job.hash,
                                       static_cast<std::uint64_t>(n), options.rigs,
                                       options.stream_cycle_cadence, 0.0},
        job.stream_injector.get());
  } catch (const common::StorageError& e) {
    note_job_storage_error(job, e);
  }
}

}  // namespace

Server::Server(Options options)
    : options_(std::move(options)),
      flightrec_(std::max<std::size_t>(1, options_.flightrec_size)),
      started_(std::chrono::steady_clock::now()),
      scheduler_(
          [&] {
            Scheduler::Options so;
            so.rigs = std::max(1u, options_.rigs);
            so.retries = options_.retries;
            so.retry_policy = options_.retry_policy;
            so.stream_cycle_cadence = std::max<std::uint64_t>(1, options_.stream_cycle_cadence);
            so.metrics = &metrics_;
            so.flightrec = &flightrec_;
            return so;
          }(),
          cache_) {
  options_.rigs = std::max(1u, options_.rigs);
  if (options_.data_dir.empty()) options_.data_dir = ".";
  if (options_.access_log.empty()) options_.access_log = options_.data_dir + "/access-log.jsonl";
}

Server::~Server() { drain(); }

std::string Server::job_path(std::uint64_t id, const char* suffix) const {
  return options_.data_dir + "/job-" + std::to_string(id) + suffix;
}

void Server::start() {
  std::filesystem::create_directories(options_.data_dir);
  try {
    if (options_.storage_plan.enabled()) {
      // The access log gets its own fault stream, decorrelated from every
      // job's durable outputs.
      resilience::StorageFaultPlan aplan = options_.storage_plan;
      aplan.seed = common::hash_coords(options_.storage_plan.seed, 0x0b5u, 0);
      access_injector_ = std::make_unique<resilience::StorageFaultInjector>(std::move(aplan));
    }
    access_log_ = std::make_unique<AccessLog>(options_.access_log, access_injector_.get());
  } catch (const common::Error& e) {
    // An unopenable access log degrades the server, it does not stop it.
    storage_errors_.fetch_add(1);
    flightrec_.record(ServiceEventKind::kStorageError, 0, "", e.what());
  }
  scheduler_.set_on_finalized([this](const std::shared_ptr<Job>& job) { on_finalized(job); });
  recover();
  scheduler_.start();
  // Re-enqueue recovered active jobs only once the rigs exist.
  std::vector<std::shared_ptr<Job>> active;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, job] : jobs_) {
      const std::lock_guard<std::mutex> jlock(job->mutex);
      if (job_state_active(job->state)) active.push_back(job);
    }
  }
  for (const auto& job : active) scheduler_.enqueue(job);
  listener_ = std::make_unique<TcpListener>(options_.port);
  port_ = listener_->port();
}

void Server::drain() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) return;
    draining_ = true;
  }
  scheduler_.stop();
}

void Server::serve(const std::function<bool()>& should_stop) {
  while (listener_ != nullptr) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (draining_) break;
    }
    if (should_stop && should_stop()) break;
    const int fd = listener_->accept_connection(250);
    if (fd < 0) continue;
    HttpRequest req;
    bool have_request = false;
    const auto start = std::chrono::steady_clock::now();
    try {
      req = read_http_request(fd);
      have_request = true;
    } catch (const HttpError& e) {
      // Malformed or over-limit framing: the documented contract is a
      // 400, not a silent close (best-effort — the peer may be gone).
      // The request never parsed, so the access-log line carries "-" for
      // method/path and the explicit "malformed" outcome.
      const HttpResponse resp = error_response(400, e.what());
      note_request("-", "-", "anonymous", resp, us_since(start), "malformed");
      try {
        write_http_response(fd, resp);
      } catch (const std::exception&) {
      }
    } catch (const std::exception&) {
      // Socket failure, read timeout, or a peer that hung up mid-read:
      // nothing sane to answer — drop the connection, keep serving.
    }
    if (have_request) {
      try {
        write_http_response(fd, handle_observed(req));
      } catch (const std::exception&) {
        // Peer hung up before the response landed: drop, keep serving.
      }
    }
    close_fd(fd);
  }
  drain();
}

std::shared_ptr<Job> Server::find_job(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  return it != jobs_.end() ? it->second : nullptr;
}

HttpResponse Server::handle(const HttpRequest& req) {
  std::string path = req.target;
  std::string query;
  if (const std::string::size_type q = path.find('?'); q != std::string::npos) {
    query = path.substr(q + 1);
    path.resize(q);
  }

  if (path == "/healthz") {
    if (req.method != "GET") return error_response(405, "use GET");
    return json_response(200, healthz_json());
  }
  if (path == "/statz") {
    if (req.method != "GET") return error_response(405, "use GET");
    return json_response(200, statz_json());
  }
  if (path == "/metricsz") {
    if (req.method != "GET") return error_response(405, "use GET");
    HttpResponse resp;
    resp.status = 200;
    resp.content_type = "text/plain; version=0.0.4";
    resp.body = metricsz_text();
    return resp;
  }
  if (path == "/debugz/flightrec") {
    if (req.method != "GET") return error_response(405, "use GET");
    HttpResponse resp;
    resp.status = 200;
    resp.content_type = "application/x-ndjson";
    resp.body = flightrec_.dump_jsonl();
    return resp;
  }
  if (path == "/jobs") {
    if (req.method == "POST") return submit(req);
    if (req.method == "GET") return list_jobs();
    return error_response(405, "use GET or POST");
  }
  if (path.rfind("/jobs/", 0) == 0) {
    const std::string rest = path.substr(6);
    const std::string::size_type slash = rest.find('/');
    const std::string id_text = rest.substr(0, slash);
    if (id_text.empty() ||
        id_text.find_first_not_of("0123456789") != std::string::npos) {
      return error_response(404, "no such job: " + id_text);
    }
    const std::uint64_t id = std::strtoull(id_text.c_str(), nullptr, 10);
    const std::shared_ptr<Job> job = find_job(id);
    if (job == nullptr) return error_response(404, "no such job: " + id_text);
    const std::string sub = slash == std::string::npos ? "" : rest.substr(slash);

    if (sub.empty()) {
      if (req.method == "DELETE") return cancel_job(id);
      if (req.method != "GET") return error_response(405, "use GET or DELETE");
      const std::lock_guard<std::mutex> lock(job->mutex);
      return json_response(200, job_status_json(*job));
    }
    if (req.method != "GET") return error_response(405, "use GET");
    if (sub == "/report") {
      {
        const std::lock_guard<std::mutex> lock(job->mutex);
        if (!job->finalized) {
          return error_response(404, "job " + id_text + " has no report yet (state " +
                                         to_string(job->state) + ")");
        }
      }
      const bool det = query == "det=1";
      return file_response(det ? job->det_report_path : job->report_path, "application/json");
    }
    if (sub == "/results") return results_response(job);
    if (sub == "/stream") return file_response(job->stream_path, "application/x-ndjson");
    return error_response(404, "no such endpoint: " + path);
  }
  return error_response(404, "no such endpoint: " + path);
}

HttpResponse Server::handle_observed(const HttpRequest& req) {
  const auto start = std::chrono::steady_clock::now();
  HttpResponse resp;
  try {
    resp = handle(req);
  } catch (const HttpError& e) {
    resp = error_response(400, e.what());
  } catch (const std::exception& e) {
    // An unexpected throw is exactly what the flight recorder exists for:
    // record it, dump the ring next to the job files, answer 500.
    resp = error_response(500, e.what());
    flightrec_.record(ServiceEventKind::kFatal, 0, tenant_of(req),
                      req.method + " " + req.target + ": " + e.what());
    (void)flightrec_.dump_to_dir(options_.data_dir);
  }
  note_request(req.method, req.target, tenant_of(req), resp, us_since(start),
               access_outcome(resp.status));
  return resp;
}

void Server::note_request(const std::string& method, const std::string& target,
                          const std::string& tenant, const HttpResponse& resp, double wall_us,
                          const char* outcome) {
  std::string path = target;
  if (const std::string::size_type q = path.find('?'); q != std::string::npos) path.resize(q);
  if (!is_observability_path(path)) {
    metrics_.add("serve.http_requests");
    if (resp.status >= 500) {
      metrics_.add("serve.http_5xx");
    } else if (resp.status >= 400) {
      metrics_.add("serve.http_4xx");
    } else {
      metrics_.add("serve.http_2xx");
    }
    metrics_.observe("serve.http_request_us", wall_us);
  }
  if (access_log_ != nullptr) {
    AccessRecord record;
    record.method = method;
    record.path = target;
    record.tenant = tenant;
    record.outcome = outcome;
    record.status = resp.status;
    record.bytes = resp.body.size();
    record.wall_us = wall_us;
    access_log_->record(record);
  }
}

std::string Server::dump_flightrec(const std::string& reason) {
  flightrec_.record(ServiceEventKind::kDump, 0, "", reason);
  return flightrec_.dump_to_dir(options_.data_dir);
}

HttpResponse Server::submit(const HttpRequest& req) {
  // The tenant is read before anything can fail so every rejection is
  // attributed to the tenant that caused it.
  const std::string tenant = tenant_of(req);
  const auto reject = [&](HttpResponse resp, const char* why) {
    jobs_rejected_.fetch_add(1);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++tenants_[tenant].rejected;
    }
    flightrec_.record(ServiceEventKind::kReject, 0, tenant,
                      std::string(why) + " (" + std::to_string(resp.status) + ")");
    return resp;
  };

  CampaignConfig config;
  try {
    config = config_from_json(req.body, "request body");
  } catch (const common::Error& e) {
    return reject(error_response(400, e.what()), "malformed config");
  }

  std::shared_ptr<Job> job;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (draining_) {
      lock.unlock();
      return reject(error_response(503, "server is draining"), "draining");
    }
    std::size_t active = 0;
    std::size_t tenant_active = 0;
    for (const auto& [id, existing] : jobs_) {
      const std::lock_guard<std::mutex> jlock(existing->mutex);
      if (!job_state_active(existing->state)) continue;
      ++active;
      if (existing->tenant == tenant) ++tenant_active;
    }
    if (active >= options_.queue_limit) {
      lock.unlock();
      HttpResponse resp = error_response(429, "server queue is full (" +
                                                  std::to_string(active) + " active jobs)");
      resp.extra_headers.emplace("Retry-After", "1");
      return reject(std::move(resp), "queue full");
    }
    if (tenant_active >= options_.tenant_quota) {
      lock.unlock();
      HttpResponse resp =
          error_response(429, "tenant \"" + tenant + "\" is over quota (" +
                                  std::to_string(tenant_active) + " active jobs)");
      resp.extra_headers.emplace("Retry-After", "1");
      return reject(std::move(resp), "tenant over quota");
    }

    const std::uint64_t id = next_id_++;
    job = make_job(id, tenant, std::move(config));
    prepare_fresh(*job);
    jobs_.emplace(id, job);
    ++tenants_[tenant].submitted;
  }
  jobs_submitted_.fetch_add(1);
  flightrec_.record(ServiceEventKind::kAdmit, job->id, tenant,
                    std::to_string(job->spec.shards.size()) + " shards");

  bool fully_cached = false;
  {
    const std::lock_guard<std::mutex> jlock(job->mutex);
    fully_cached = job->remaining == 0;
  }
  persist_meta(*job);  // descriptor on disk before any rig can touch the job
  if (fully_cached) jobs_cache_hit_.fetch_add(1);
  scheduler_.enqueue(job);  // fully-cached jobs finalize inline here
  // Status is read *after* enqueue so a job born fully cached answers its
  // own submission with state "done" (and cache_hit true), not "queued".
  std::string body;
  {
    const std::lock_guard<std::mutex> jlock(job->mutex);
    body = job_status_json(*job);
  }
  return json_response(201, std::move(body));
}

HttpResponse Server::list_jobs() {
  std::string body = "{\"jobs\":[";
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    bool first = true;
    for (const auto& [id, job] : jobs_) {
      if (!first) body += ',';
      first = false;
      const std::lock_guard<std::mutex> jlock(job->mutex);
      body += job_status_json(*job);
    }
  }
  body += "]}";
  return json_response(200, std::move(body));
}

HttpResponse Server::cancel_job(std::uint64_t id) {
  const std::shared_ptr<Job> job = find_job(id);
  if (job == nullptr) return error_response(404, "no such job: " + std::to_string(id));
  std::string body;
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    if (!job_state_active(job->state)) {
      return error_response(409,
                            "job " + std::to_string(id) + " is already " +
                                to_string(job->state));
    }
    job->cancel.store(true, std::memory_order_relaxed);
    job->state = JobState::kCancelled;
    // Close the writers only when no rig holds a reference to them: an
    // attached rig's metrics sampler appends to *job->stream outside this
    // lock, so resetting mid-flight is a use-after-free. With rigs
    // attached, the last retire() closes both writers; the in-flight
    // shards finish and journal (DESIGN.md: "claimed shards finish").
    if (job->rigs_attached == 0) {
      job->journal.reset();
      job->stream.reset();
    }
    body = job_status_json(*job);
  }
  flightrec_.record(ServiceEventKind::kCancel, job->id, job->tenant, "");
  persist_meta(*job);
  return json_response(200, std::move(body));
}

HttpResponse Server::results_response(const std::shared_ptr<Job>& job) {
  std::error_code ec;
  if (!std::filesystem::exists(job->journal_path, ec)) {
    return error_response(404, "job " + std::to_string(job->id) + " has no journal");
  }
  // Reading the intact prefix is safe while a writer holds the file: every
  // append is a whole fsync'd line. Flattening sorts by shard index and
  // re-serializes, so the document is byte-identical no matter how the
  // shards interleaved across rigs, retries, or server restarts.
  campaign::JournalReader reader(job->journal_path);
  std::string body;
  for (const auto& [index, records] : reader.shards()) {
    for (const auto& record : records) {
      campaign::append_row_record_json(body, record);
      body += '\n';
    }
  }
  HttpResponse resp;
  resp.status = 200;
  resp.content_type = "application/x-ndjson";
  resp.body = std::move(body);
  return resp;
}

HttpResponse Server::file_response(const std::string& path, const char* content_type) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return error_response(404, "no such file: " + path);
  }
  HttpResponse resp;
  resp.status = 200;
  resp.content_type = content_type;
  resp.body = read_text_file(path);
  return resp;
}

std::string Server::healthz_json() {
  std::uint64_t storage_errors = storage_errors_.load();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, job] : jobs_) {
      const std::lock_guard<std::mutex> jlock(job->mutex);
      storage_errors += job->result.storage_errors;
    }
  }
  std::string out = "{\"degraded\":";
  out += storage_errors > 0 ? "true" : "false";
  out += ",\"ok\":true,\"schema\":\"rh-serve-healthz/v1\",\"storage_errors\":" +
         std::to_string(storage_errors) + "}";
  return out;
}

Server::StatsSnapshot Server::stats_snapshot() {
  StatsSnapshot snap;
  snap.storage_errors = storage_errors_.load();
  snap.uptime_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - started_)
          .count();
  std::map<std::string, TenantRow> tenants;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snap.draining = draining_;
    for (const auto& [tenant, stats] : tenants_) {
      TenantRow& row = tenants[tenant];
      row.tenant = tenant;
      row.stats = stats;
    }
    for (const auto& [id, job] : jobs_) {
      const std::lock_guard<std::mutex> jlock(job->mutex);
      snap.shards_cached += job->shards_cached;
      snap.storage_errors += job->result.storage_errors;
      const bool is_active = job_state_active(job->state);
      switch (job->state) {
        case JobState::kQueued: ++snap.queued; ++snap.active; break;
        case JobState::kRunning: ++snap.running; ++snap.active; break;
        case JobState::kDone: ++snap.done; break;
        case JobState::kFailed: ++snap.failed; break;
        case JobState::kCancelled: ++snap.cancelled; break;
      }
      TenantRow& row = tenants[job->tenant];
      row.tenant = job->tenant;  // recovered tenants may have no stats row yet
      if (is_active) ++row.active;
    }
  }
  snap.tenants.reserve(tenants.size());
  for (auto& [tenant, row] : tenants) snap.tenants.push_back(std::move(row));
  snap.rigs = scheduler_.rig_status();
  return snap;
}

std::string Server::statz_json() {
  const StatsSnapshot snap = stats_snapshot();
  std::string out = "{";
  out += "\"campaign.shards_run\":" + std::to_string(scheduler_.shards_run());
  out += ",\"draining\":";
  out += snap.draining ? "true" : "false";
  out += ",\"rigs\":[";
  for (std::size_t r = 0; r < snap.rigs.size(); ++r) {
    const Scheduler::RigStatus& rig = snap.rigs[r];
    const double utilization =
        snap.uptime_ms > 0.0 ? std::min(1.0, rig.busy_ms / snap.uptime_ms) : 0.0;
    if (r > 0) out += ',';
    out += "{\"busy_ms\":" + telemetry::prometheus_number(rig.busy_ms);
    out += ",\"done\":" + std::to_string(rig.done);
    out += ",\"job\":" + std::to_string(rig.job);
    out += ",\"shard\":" + std::to_string(rig.shard);
    out += ",\"steals\":" + std::to_string(rig.steals);
    out += ",\"utilization\":" + telemetry::prometheus_number(utilization);
    out += "}";
  }
  out += "]";
  out += ",\"schema\":\"rh-serve-statz/v1\"";
  out += ",\"serve.cache_entries\":" + std::to_string(cache_.entries());
  out += ",\"serve.cache_hits\":" + std::to_string(cache_.hits());
  out += ",\"serve.cache_misses\":" + std::to_string(cache_.misses());
  out += ",\"serve.jobs_active\":" + std::to_string(snap.active);
  out += ",\"serve.jobs_cache_hit\":" + std::to_string(jobs_cache_hit_.load());
  out += ",\"serve.jobs_cancelled\":" + std::to_string(snap.cancelled);
  out += ",\"serve.jobs_done\":" + std::to_string(snap.done);
  out += ",\"serve.jobs_failed\":" + std::to_string(snap.failed);
  out += ",\"serve.jobs_queued\":" + std::to_string(snap.queued);
  out += ",\"serve.jobs_rejected\":" + std::to_string(jobs_rejected_.load());
  out += ",\"serve.jobs_running\":" + std::to_string(snap.running);
  out += ",\"serve.jobs_submitted\":" + std::to_string(jobs_submitted_.load());
  out += ",\"serve.queue_depth\":" + std::to_string(scheduler_.queue_depth());
  out += ",\"serve.rigs\":" + std::to_string(scheduler_.rigs());
  out += ",\"serve.shards_cached\":" + std::to_string(snap.shards_cached);
  out += ",\"serve.shards_stolen\":" + std::to_string(scheduler_.shards_stolen());
  out += ",\"serve.storage_errors\":" + std::to_string(snap.storage_errors);
  out += ",\"serve.uptime_ms\":" + telemetry::prometheus_number(snap.uptime_ms);
  out += ",\"tenants\":[";
  for (std::size_t t = 0; t < snap.tenants.size(); ++t) {
    const TenantRow& row = snap.tenants[t];
    if (t > 0) out += ',';
    out += "{\"active\":" + std::to_string(row.active);
    out += ",\"cache_hits\":" + std::to_string(row.stats.cache_hits);
    out += ",\"completed\":" + std::to_string(row.stats.completed);
    out += ",\"quota\":" + std::to_string(options_.tenant_quota);
    out += ",\"rejected\":" + std::to_string(row.stats.rejected);
    out += ",\"shards_run\":" + std::to_string(row.stats.shards_run);
    out += ",\"submitted\":" + std::to_string(row.stats.submitted);
    out += ",\"tenant\":\"" + telemetry::json_escape(row.tenant) + "\"}";
  }
  out += "]}";
  return out;
}

std::string Server::metricsz_text() {
  const StatsSnapshot snap = stats_snapshot();
  std::ostringstream os;
  // 1. The serve.* catalogue (histograms + HTTP counters), sorted by name.
  telemetry::write_prometheus(os, metrics_.snapshot());
  // 2. Point-in-time job/cache/scheduler series. Wall-clock-valued series
  //    (uptime, rig busy/utilization) live in /statz only: everything here
  //    is a pure function of the request/shard history, which is what
  //    makes consecutive scrapes byte-identical.
  const auto counter = [&os](const char* name, double v) {
    telemetry::write_prometheus_type(os, name, "counter");
    telemetry::write_prometheus_sample(os, name, {}, v);
  };
  const auto gauge = [&os](const char* name, double v) {
    telemetry::write_prometheus_type(os, name, "gauge");
    telemetry::write_prometheus_sample(os, name, {}, v);
  };
  counter("campaign_shards_run", static_cast<double>(scheduler_.shards_run()));
  gauge("serve_access_log_degraded",
        access_log_ != nullptr && access_log_->degraded() ? 1.0 : 0.0);
  gauge("serve_cache_entries", static_cast<double>(cache_.entries()));
  counter("serve_cache_hits", static_cast<double>(cache_.hits()));
  counter("serve_cache_misses", static_cast<double>(cache_.misses()));
  gauge("serve_draining", snap.draining ? 1.0 : 0.0);
  counter("serve_flightrec_events", static_cast<double>(flightrec_.recorded()));
  gauge("serve_jobs_active", static_cast<double>(snap.active));
  counter("serve_jobs_cache_hit", static_cast<double>(jobs_cache_hit_.load()));
  gauge("serve_jobs_cancelled", static_cast<double>(snap.cancelled));
  gauge("serve_jobs_done", static_cast<double>(snap.done));
  gauge("serve_jobs_failed", static_cast<double>(snap.failed));
  gauge("serve_jobs_queued", static_cast<double>(snap.queued));
  counter("serve_jobs_rejected", static_cast<double>(jobs_rejected_.load()));
  gauge("serve_jobs_running", static_cast<double>(snap.running));
  counter("serve_jobs_submitted", static_cast<double>(jobs_submitted_.load()));
  gauge("serve_queue_depth", static_cast<double>(scheduler_.queue_depth()));
  // 3. Per-rig and per-tenant labeled series (rig index / tenant name are
  //    the label; one TYPE line per family, samples in label order).
  telemetry::write_prometheus_type(os, "serve_rig_done", "counter");
  for (std::size_t r = 0; r < snap.rigs.size(); ++r) {
    telemetry::write_prometheus_sample(os, "serve_rig_done", {{"rig", std::to_string(r)}},
                                       static_cast<double>(snap.rigs[r].done));
  }
  telemetry::write_prometheus_type(os, "serve_rig_steals", "counter");
  for (std::size_t r = 0; r < snap.rigs.size(); ++r) {
    telemetry::write_prometheus_sample(os, "serve_rig_steals", {{"rig", std::to_string(r)}},
                                       static_cast<double>(snap.rigs[r].steals));
  }
  gauge("serve_rigs", static_cast<double>(scheduler_.rigs()));
  counter("serve_shards_cached", static_cast<double>(snap.shards_cached));
  counter("serve_shards_stolen", static_cast<double>(scheduler_.shards_stolen()));
  counter("serve_storage_errors", static_cast<double>(snap.storage_errors));
  const auto tenant_family = [&](const char* name, const char* type,
                                 const std::function<double(const TenantRow&)>& value) {
    telemetry::write_prometheus_type(os, name, type);
    for (const TenantRow& row : snap.tenants) {
      telemetry::write_prometheus_sample(os, name, {{"tenant", row.tenant}}, value(row));
    }
  };
  tenant_family("serve_tenant_active", "gauge",
                [](const TenantRow& r) { return static_cast<double>(r.active); });
  tenant_family("serve_tenant_cache_hits", "counter",
                [](const TenantRow& r) { return static_cast<double>(r.stats.cache_hits); });
  tenant_family("serve_tenant_jobs_completed", "counter",
                [](const TenantRow& r) { return static_cast<double>(r.stats.completed); });
  tenant_family("serve_tenant_jobs_rejected", "counter",
                [](const TenantRow& r) { return static_cast<double>(r.stats.rejected); });
  tenant_family("serve_tenant_jobs_submitted", "counter",
                [](const TenantRow& r) { return static_cast<double>(r.stats.submitted); });
  tenant_family("serve_tenant_quota", "gauge", [this](const TenantRow&) {
    return static_cast<double>(options_.tenant_quota);
  });
  tenant_family("serve_tenant_shards_run", "counter",
                [](const TenantRow& r) { return static_cast<double>(r.stats.shards_run); });
  return os.str();
}

std::shared_ptr<Job> Server::make_job(std::uint64_t id, const std::string& tenant,
                                      CampaignConfig config) {
  auto job = std::make_shared<Job>();
  job->id = id;
  job->tenant = tenant;
  job->config = std::move(config);
  job->spec = to_sweep_spec(job->config);
  job->hash = config_hash(job->config);
  job->cache_prefix = sweep_cache_prefix(job->spec);
  job->journal_path = job_path(id, ".journal.jsonl");
  job->stream_path = job_path(id, ".stream.jsonl");
  job->report_path = job_path(id, ".report.json");
  job->det_report_path = job_path(id, ".report.det.json");
  job->meta_path = job_path(id, ".json");
  if (options_.storage_plan.enabled()) {
    // One independent fault stream per durable output, decorrelated by job
    // id so two jobs' storms never move each other.
    resilience::StorageFaultPlan splan = options_.storage_plan;
    splan.seed = common::hash_coords(options_.storage_plan.seed, 0x570u, id, 0);
    job->journal_injector = std::make_unique<resilience::StorageFaultInjector>(splan);
    splan.seed = common::hash_coords(options_.storage_plan.seed, 0x570u, id, 1);
    job->stream_injector = std::make_unique<resilience::StorageFaultInjector>(splan);
    splan.seed = common::hash_coords(options_.storage_plan.seed, 0x570u, id, 2);
    job->meta_injector = std::make_unique<resilience::StorageFaultInjector>(std::move(splan));
  }
  const std::size_t n = job->spec.shards.size();
  job->done.assign(n, 0);
  job->remaining = n;
  job->result.per_shard.resize(n);
  register_job_counters(*job);
  // Same sink configuration as the bench CLI's report-only TelemetrySession:
  // report byte-identity depends on the aggregate snapshot matching.
  telemetry::TelemetryConfig tc;
  tc.trace_enabled = false;
  job->aggregate = std::make_unique<telemetry::Telemetry>(tc);
  job->wstatus.resize(std::max(1u, options_.rigs));
  job->epoch = std::chrono::steady_clock::now();
  return job;
}

void Server::prepare_fresh(Job& job) {
  const std::size_t n = job.spec.shards.size();
  const campaign::JournalHeader header{job.spec.device.fault.seed, job.hash,
                                       static_cast<std::uint64_t>(n)};
  try {
    job.journal =
        std::make_unique<campaign::JournalWriter>(job.journal_path, header,
                                                  job.journal_injector.get());
  } catch (const common::StorageError& e) {
    note_job_storage_error(job, e);
    job.journal_lost = true;  // admitted, but it can never claim success
  }
  open_stream(job, n, options_);

  // Probe the cache shard by shard: a superset sweep only simulates the
  // shards the cache has never seen. Hits replay through the same
  // accounting as a `--resume` skip, journal line included, so downstream
  // consumers cannot tell a cached shard from a journaled one.
  std::uint64_t skipped = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<core::RowRecord> records;
    const auto lookup_start = std::chrono::steady_clock::now();
    const bool hit =
        cache_.lookup(shard_cache_key(job.cache_prefix, job.spec.shards[i]), records);
    const double lookup_us = us_since(lookup_start);
    metrics_.observe("serve.cache_lookup_us", lookup_us);
    if (!hit) continue;
    metrics_.observe("serve.cache_hit_us", lookup_us);
    if (job.journal != nullptr) {
      try {
        job.journal->append_shard(i, records);
      } catch (const common::StorageError& e) {
        job.journal.reset();
        job.journal_lost = true;
        note_job_storage_error(job, e);
      }
    }
    job.metrics.counter("campaign.records").add(records.size());
    job.result.per_shard[i] = std::move(records);
    job.done[i] = 1;
    --job.remaining;
    ++job.shards_cached;
    ++job.result.shards_skipped;
    ++skipped;
  }
  if (skipped > 0) job.metrics.counter("campaign.shards_skipped").add(skipped);
}

void Server::prepare_resumed(Job& job) {
  const std::size_t n = job.spec.shards.size();
  const campaign::JournalHeader header{job.spec.device.fault.seed, job.hash,
                                       static_cast<std::uint64_t>(n)};
  try {
    bool reopened = false;
    std::error_code ec;
    if (std::filesystem::exists(job.journal_path, ec)) {
      try {
        campaign::JournalReader reader(job.journal_path);
        reader.require_matches(header);
        std::uint64_t skipped = 0;
        for (const auto& [index, records] : reader.shards()) {
          if (index >= n) continue;
          cache_.insert(shard_cache_key(job.cache_prefix, job.spec.shards[index]), records);
          job.metrics.counter("campaign.records").add(records.size());
          job.result.per_shard[index] = records;
          job.done[index] = 1;
          --job.remaining;
          ++job.shards_cached;
          ++job.result.shards_skipped;
          ++skipped;
        }
        if (skipped > 0) job.metrics.counter("campaign.shards_skipped").add(skipped);
        // Quarantine-and-compact: corrupt mid-file lines move to the
        // .quarantine sidecar and exactly their shards stay pending.
        job.journal = std::make_unique<campaign::JournalWriter>(job.journal_path, reader,
                                                                job.journal_injector.get());
        reopened = true;
      } catch (const common::ConfigError&) {
        // Destroyed header (or a journal from another sweep): nothing in it
        // can be trusted, so every shard re-runs into a fresh journal.
      }
    }
    if (!reopened) {
      job.journal = std::make_unique<campaign::JournalWriter>(job.journal_path, header,
                                                              job.journal_injector.get());
    }
  } catch (const common::StorageError& e) {
    note_job_storage_error(job, e);
    job.journal_lost = true;
  }
  open_stream(job, n, options_);
  job.state = JobState::kQueued;
}

void Server::warm_cache_from_journal(Job& job) {
  std::error_code ec;
  if (!std::filesystem::exists(job.journal_path, ec)) return;
  try {
    campaign::JournalReader reader(job.journal_path);
    const campaign::JournalHeader header{job.spec.device.fault.seed, job.hash,
                                         static_cast<std::uint64_t>(job.spec.shards.size())};
    reader.require_matches(header);
    const std::size_t n = job.spec.shards.size();
    for (const auto& [index, records] : reader.shards()) {
      if (index >= n) continue;
      cache_.insert(shard_cache_key(job.cache_prefix, job.spec.shards[index]), records);
      job.metrics.counter("campaign.records").add(records.size());
      job.result.per_shard[index] = records;
      if (job.done[index] == 0) {
        job.done[index] = 1;
        --job.remaining;
        ++job.shards_cached;
        ++job.result.shards_skipped;
      }
    }
  } catch (const common::Error&) {
    // A terminal job's journal that fails validation only costs cache
    // warmth — the job's report on disk is still served as-is.
  }
}

void Server::persist_meta(Job& job) {
  // The whole compose+write runs under job.mutex: two threads persisting
  // the same job (cancel vs. finalize) must serialize on the descriptor
  // and on the job's meta fault injector. Descriptors are tiny, so the
  // fsyncs under the lock are cheap.
  try {
    const std::lock_guard<std::mutex> lock(job.mutex);
    const std::string text = job_meta_json(job) + "\n";
    resilience::write_file_atomic(job.meta_path, text, "job descriptor",
                                  job.meta_injector.get());
  } catch (const common::Error&) {
    // persist_meta runs on rig threads (on_finalized) as well as HTTP
    // threads: a descriptor that cannot land is counted and surfaced via
    // /healthz, never thrown — the stale descriptor on disk still replays
    // to a valid (if older) state on restart.
    storage_errors_.fetch_add(1);
  }
}

void Server::recover() {
  std::error_code ec;
  if (!std::filesystem::is_directory(options_.data_dir, ec)) return;
  std::vector<std::pair<std::uint64_t, std::string>> descriptors;
  for (const auto& entry : std::filesystem::directory_iterator(options_.data_dir, ec)) {
    std::uint64_t id = 0;
    if (entry.is_regular_file() && is_job_descriptor(entry.path().filename().string(), id)) {
      descriptors.emplace_back(id, entry.path().string());
    }
  }
  std::sort(descriptors.begin(), descriptors.end());

  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, path] : descriptors) {
    std::shared_ptr<Job> job;
    try {
      const campaign::JsonValue doc =
          campaign::parse_json(read_text_file(path), "job descriptor " + path);
      const CampaignConfig config = config_from_json(doc.at("config"), "job descriptor");
      const JobState state = job_state_from_string(doc.at("state").text);
      std::string tenant = "anonymous";
      if (const campaign::JsonValue* t = doc.find("tenant");
          t != nullptr && t->kind == campaign::JsonValue::Kind::kString) {
        tenant = t->text;
      }
      job = make_job(id, tenant, config);
      job->state = state;
      if (job_state_active(state)) {
        prepare_resumed(*job);
      } else {
        // Terminal: queryable as-is; its journal still warms the cache.
        job->finalized = true;
        warm_cache_from_journal(*job);
        job->remaining = 0;
        if (state == JobState::kCancelled) {
          job->cancel.store(true, std::memory_order_relaxed);
        }
      }
    } catch (const common::Error&) {
      // A descriptor we cannot replay must not take the server down with
      // it — skip it and keep its files for the operator.
      continue;
    }
    jobs_.emplace(id, job);
    next_id_ = std::max(next_id_, id + 1);
    std::string state_text;
    {
      const std::lock_guard<std::mutex> jlock(job->mutex);
      state_text = to_string(job->state);
    }
    flightrec_.record(ServiceEventKind::kRecover, id, job->tenant, state_text);
  }
}

void Server::on_finalized(const std::shared_ptr<Job>& job) {
  // Copy the accounting out under job.mutex, then fold it into the tenant
  // table under mutex_ — never both at once (statz takes them in the other
  // order).
  std::string tenant;
  std::string state;
  std::uint64_t shards_run = 0;
  std::uint64_t cache_hits = 0;
  {
    const std::lock_guard<std::mutex> jlock(job->mutex);
    tenant = job->tenant;
    state = to_string(job->state);
    shards_run = job->result.shards_run;
    cache_hits = job->shards_cached;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    TenantStats& stats = tenants_[tenant];
    ++stats.completed;
    stats.shards_run += shards_run;
    stats.cache_hits += cache_hits;
  }
  flightrec_.record(ServiceEventKind::kFinalize, job->id, tenant, state);
  persist_meta(*job);
}

}  // namespace rh::serve
