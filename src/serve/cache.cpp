#include "serve/cache.hpp"

#include "campaign/journal.hpp"

namespace rh::serve {

std::string sweep_cache_prefix(const campaign::SweepSpec& spec) {
  campaign::SweepSpec stripped = spec;
  stripped.shards.clear();
  return campaign::sweep_fingerprint(stripped);
}

std::uint64_t shard_cache_key(const std::string& prefix, const core::ShardSpec& shard) {
  // Same shape as the shard clause of sweep_fingerprint, minus the plan
  // index: where the shard sits in a particular job's plan is scheduling,
  // not content.
  std::string key = prefix;
  key += "|shard:" + shard.site.to_string() + ":" + std::to_string(shard.row_begin) + "-" +
         std::to_string(shard.row_end) + ":" + std::to_string(shard.row_stride) + ":m" +
         std::to_string(static_cast<int>(shard.mode)) + ":p" + std::to_string(shard.pattern) +
         ":h" + std::to_string(shard.hammers);
  return campaign::fnv1a(key);
}

bool ResultCache::lookup(std::uint64_t key, std::vector<core::RowRecord>& records) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  records = it->second;
  return true;
}

void ResultCache::insert(std::uint64_t key, const std::vector<core::RowRecord>& records) {
  const std::lock_guard<std::mutex> lock(mutex_);
  map_.emplace(key, records);
}

std::size_t ResultCache::entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

std::uint64_t ResultCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace rh::serve
