#include "serve/config.hpp"

#include <cinttypes>
#include <cstdio>
#include <limits>

#include "campaign/journal.hpp"
#include "common/error.hpp"
#include "core/data_patterns.hpp"
#include "core/shard.hpp"
#include "telemetry/metrics.hpp"

namespace rh::serve {

namespace {

using campaign::JsonValue;

std::string hash_hex(std::uint64_t h) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

hbm::ScrambleKind scramble_from_string(const std::string& name) {
  if (name == "identity") return hbm::ScrambleKind::kIdentity;
  if (name == "pair-swap") return hbm::ScrambleKind::kPairSwap;
  if (name == "xor-fold") return hbm::ScrambleKind::kXorFold;
  throw common::ConfigError("campaign config: unknown scramble \"" + name +
                            "\" (expected identity, pair-swap, or xor-fold)");
}

void append_u64_array(std::string& out, const char* key,
                      const std::vector<std::uint64_t>& values) {
  out += '"';
  out += key;
  out += "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
}

std::uint64_t member_u64(const JsonValue& v, const char* key) {
  if (v.kind != JsonValue::Kind::kNumber) {
    throw common::ConfigError(std::string("campaign config: \"") + key + "\" must be a number");
  }
  return v.as_u64();
}

std::uint32_t member_u32(const JsonValue& v, const char* key) {
  const std::uint64_t u = member_u64(v, key);
  if (u > std::numeric_limits<std::uint32_t>::max()) {
    throw common::ConfigError(std::string("campaign config: \"") + key + "\" is out of range");
  }
  return static_cast<std::uint32_t>(u);
}

bool member_bool(const JsonValue& v, const char* key) {
  if (v.kind != JsonValue::Kind::kBool) {
    throw common::ConfigError(std::string("campaign config: \"") + key +
                              "\" must be true or false");
  }
  return v.boolean;
}

double member_double(const JsonValue& v, const char* key) {
  if (v.kind != JsonValue::Kind::kNumber) {
    throw common::ConfigError(std::string("campaign config: \"") + key + "\" must be a number");
  }
  return v.as_double();
}

std::string member_string(const JsonValue& v, const char* key) {
  if (v.kind != JsonValue::Kind::kString) {
    throw common::ConfigError(std::string("campaign config: \"") + key + "\" must be a string");
  }
  return v.text;
}

template <typename T>
std::vector<T> member_array(const JsonValue& v, const char* key) {
  if (v.kind != JsonValue::Kind::kArray) {
    throw common::ConfigError(std::string("campaign config: \"") + key + "\" must be an array");
  }
  std::vector<T> out;
  out.reserve(v.items.size());
  for (const JsonValue& item : v.items) {
    out.push_back(static_cast<T>(member_u64(item, key)));
  }
  return out;
}

void require_positive(std::uint64_t value, const char* key) {
  if (value == 0) {
    throw common::ConfigError(std::string("campaign config: \"") + key + "\" must be >= 1");
  }
}

void validate(const CampaignConfig& c) {
  if (c.kind != "survey" && c.kind != "onset") {
    throw common::ConfigError("campaign config: unknown kind \"" + c.kind +
                              "\" (expected survey or onset)");
  }
  scramble_from_string(c.scramble);  // throws on an unknown name
  require_positive(c.trr_period, "trr_period");
  const hbm::Geometry geometry;  // the paper part's fixed floorplan
  if (c.channels.empty()) {
    throw common::ConfigError("campaign config: \"channels\" must not be empty");
  }
  for (const std::uint32_t ch : c.channels) {
    if (ch >= geometry.channels) {
      throw common::ConfigError("campaign config: channel " + std::to_string(ch) +
                                " out of range (device has " +
                                std::to_string(geometry.channels) + " channels)");
    }
  }
  if (c.pseudo_channel >= geometry.pseudo_channels_per_channel ||
      c.bank >= geometry.banks_per_pseudo_channel) {
    throw common::ConfigError("campaign config: pseudo_channel/bank out of range");
  }
  require_positive(c.region_rows, "region_rows");
  require_positive(c.row_stride, "row_stride");
  require_positive(c.ber_hammers, "ber_hammers");
  require_positive(c.max_hammers, "max_hammers");
  require_positive(c.wcdp_tolerance, "wcdp_tolerance");
  require_positive(c.max_rows_per_shard, "max_rows_per_shard");
  if (c.hammer_counts.empty()) {
    throw common::ConfigError("campaign config: \"hammer_counts\" must not be empty");
  }
  for (const std::uint64_t h : c.hammer_counts) require_positive(h, "hammer_counts");
  require_positive(c.onset_rows, "onset_rows");
  require_positive(c.onset_row_stride, "onset_row_stride");
  if (c.onset_pattern >= core::kAllPatterns.size()) {
    throw common::ConfigError("campaign config: \"onset_pattern\" out of range (have " +
                              std::to_string(core::kAllPatterns.size()) + " patterns)");
  }
  if (!(c.fault_rate >= 0.0 && c.fault_rate <= 1.0)) {
    throw common::ConfigError("campaign config: \"fault_rate\" must be in [0, 1]");
  }
  if (!(c.temperature_c > 0.0 && c.temperature_c < 200.0)) {
    throw common::ConfigError("campaign config: \"temperature_c\" out of range");
  }
}

}  // namespace

std::string to_canonical_json(const CampaignConfig& c) {
  using campaign::format_double_exact;
  std::string out = "{";
  out += "\"aggressor_on_time\":" + std::to_string(c.aggressor_on_time);
  out += ",\"bank\":" + std::to_string(c.bank);
  out += ",\"ber_hammers\":" + std::to_string(c.ber_hammers);
  out += ",";
  append_u64_array(out, "channels",
                   std::vector<std::uint64_t>(c.channels.begin(), c.channels.end()));
  out += ",\"enforce_retention_bound\":";
  out += c.enforce_retention_bound ? "true" : "false";
  out += ",\"fault_rate\":" + format_double_exact(c.fault_rate);
  out += ",\"fault_seed\":" + std::to_string(c.fault_seed);
  out += ",";
  append_u64_array(out, "hammer_counts", c.hammer_counts);
  out += ",\"kind\":\"" + c.kind + "\"";
  out += ",\"label\":\"" + telemetry::json_escape(c.label) + "\"";
  out += ",\"max_hammers\":" + std::to_string(c.max_hammers);
  out += ",\"max_rows_per_shard\":" + std::to_string(c.max_rows_per_shard);
  out += ",\"onset_pattern\":" + std::to_string(c.onset_pattern);
  out += ",\"onset_row_begin\":" + std::to_string(c.onset_row_begin);
  out += ",\"onset_row_stride\":" + std::to_string(c.onset_row_stride);
  out += ",\"onset_rows\":" + std::to_string(c.onset_rows);
  out += ",\"pseudo_channel\":" + std::to_string(c.pseudo_channel);
  out += ",\"region_rows\":" + std::to_string(c.region_rows);
  out += ",\"row_stride\":" + std::to_string(c.row_stride);
  out += ",\"schema\":\"rh-campaign-config/v1\"";
  out += ",\"scramble\":\"" + c.scramble + "\"";
  out += ",\"seed\":" + std::to_string(c.seed);
  out += ",\"settle_thermal\":";
  out += c.settle_thermal ? "true" : "false";
  out += ",\"surround_rows\":" + std::to_string(c.surround_rows);
  out += ",\"temperature_c\":" + format_double_exact(c.temperature_c);
  out += ",\"trr_enabled\":";
  out += c.trr_enabled ? "true" : "false";
  out += ",\"trr_period\":" + std::to_string(c.trr_period);
  out += ",\"wcdp_by_ber\":";
  out += c.wcdp_by_ber ? "true" : "false";
  out += ",\"wcdp_tolerance\":" + std::to_string(c.wcdp_tolerance);
  out += "}";
  return out;
}

CampaignConfig config_from_json(const std::string& text, const std::string& what) {
  return config_from_json(campaign::parse_json(text, what), what);
}

CampaignConfig config_from_json(const JsonValue& doc, const std::string& what) {
  if (doc.kind != JsonValue::Kind::kObject) {
    throw common::ConfigError("campaign config: " + what + " is not a JSON object");
  }
  CampaignConfig c;
  for (const auto& [key, value] : doc.members) {
    if (key == "aggressor_on_time") c.aggressor_on_time = member_u64(value, "aggressor_on_time");
    else if (key == "bank") c.bank = member_u32(value, "bank");
    else if (key == "ber_hammers") c.ber_hammers = member_u64(value, "ber_hammers");
    else if (key == "channels") c.channels = member_array<std::uint32_t>(value, "channels");
    else if (key == "enforce_retention_bound")
      c.enforce_retention_bound = member_bool(value, "enforce_retention_bound");
    else if (key == "fault_rate") c.fault_rate = member_double(value, "fault_rate");
    else if (key == "fault_seed") c.fault_seed = member_u64(value, "fault_seed");
    else if (key == "hammer_counts")
      c.hammer_counts = member_array<std::uint64_t>(value, "hammer_counts");
    else if (key == "kind") c.kind = member_string(value, "kind");
    else if (key == "label") c.label = member_string(value, "label");
    else if (key == "max_hammers") c.max_hammers = member_u64(value, "max_hammers");
    else if (key == "max_rows_per_shard")
      c.max_rows_per_shard = member_u32(value, "max_rows_per_shard");
    else if (key == "onset_pattern") c.onset_pattern = member_u32(value, "onset_pattern");
    else if (key == "onset_row_begin") c.onset_row_begin = member_u32(value, "onset_row_begin");
    else if (key == "onset_row_stride") c.onset_row_stride = member_u32(value, "onset_row_stride");
    else if (key == "onset_rows") c.onset_rows = member_u32(value, "onset_rows");
    else if (key == "pseudo_channel") c.pseudo_channel = member_u32(value, "pseudo_channel");
    else if (key == "region_rows") c.region_rows = member_u32(value, "region_rows");
    else if (key == "row_stride") c.row_stride = member_u32(value, "row_stride");
    else if (key == "schema") {
      if (member_string(value, "schema") != "rh-campaign-config/v1") {
        throw common::ConfigError("campaign config: unsupported schema \"" + value.text + "\"");
      }
    } else if (key == "scramble") c.scramble = member_string(value, "scramble");
    else if (key == "seed") c.seed = member_u64(value, "seed");
    else if (key == "settle_thermal") c.settle_thermal = member_bool(value, "settle_thermal");
    else if (key == "surround_rows") c.surround_rows = member_u32(value, "surround_rows");
    else if (key == "temperature_c") c.temperature_c = member_double(value, "temperature_c");
    else if (key == "trr_enabled") c.trr_enabled = member_bool(value, "trr_enabled");
    else if (key == "trr_period") c.trr_period = member_u32(value, "trr_period");
    else if (key == "wcdp_by_ber") c.wcdp_by_ber = member_bool(value, "wcdp_by_ber");
    else if (key == "wcdp_tolerance") c.wcdp_tolerance = member_u64(value, "wcdp_tolerance");
    else {
      // Strict: a typo'd knob silently keeping its default would hash (and
      // cache) as a job the tenant did not ask for.
      throw common::ConfigError("campaign config: unknown key \"" + key + "\" in " + what);
    }
  }
  validate(c);
  return c;
}

hbm::DeviceConfig to_device_config(const CampaignConfig& c) {
  hbm::DeviceConfig device;
  device.fault.seed = c.seed;
  device.scramble = scramble_from_string(c.scramble);
  device.trr.enabled = c.trr_enabled;
  device.trr.period = c.trr_period;
  return device;
}

campaign::SweepSpec to_sweep_spec(const CampaignConfig& c) {
  validate(c);
  core::CharacterizerConfig chr;
  chr.ber_hammers = c.ber_hammers;
  chr.max_hammers = c.max_hammers;
  chr.wcdp_tolerance = c.wcdp_tolerance;
  chr.surround_rows = c.surround_rows;
  chr.enforce_retention_bound = c.enforce_retention_bound;
  chr.aggressor_on_time = c.aggressor_on_time;

  campaign::SweepSpec spec;
  spec.temperature_c = c.temperature_c;
  spec.settle_thermal = c.settle_thermal;
  if (c.kind == "onset") {
    spec.device = to_device_config(c);
    spec.characterizer = chr;
    // One shard per (hammer count, channel), in count-major order — the
    // ablation_hammer_count plan, each point an independent unit of work.
    for (const std::uint64_t hammers : c.hammer_counts) {
      for (const std::uint32_t channel : c.channels) {
        core::ShardSpec shard;
        shard.index = spec.shards.size();
        shard.site = core::Site{channel, c.pseudo_channel, c.bank};
        shard.row_begin = c.onset_row_begin;
        shard.row_end = c.onset_row_begin + c.onset_rows * c.onset_row_stride;
        shard.row_stride = c.onset_row_stride;
        shard.mode = core::ShardMode::kSinglePattern;
        shard.pattern = static_cast<std::uint8_t>(c.onset_pattern);
        shard.hammers = hammers;
        spec.shards.push_back(shard);
      }
    }
    return spec;
  }
  core::SurveyConfig survey;
  survey.channels = c.channels;
  survey.pseudo_channel = c.pseudo_channel;
  survey.bank = c.bank;
  survey.region_rows = c.region_rows;
  survey.row_stride = c.row_stride;
  survey.wcdp_by_ber = c.wcdp_by_ber;
  survey.characterizer = chr;
  campaign::SweepSpec planned =
      campaign::survey_sweep(to_device_config(c), survey, c.max_rows_per_shard);
  planned.temperature_c = c.temperature_c;
  planned.settle_thermal = c.settle_thermal;
  return planned;
}

resilience::FaultPlan to_fault_plan(const CampaignConfig& c) {
  resilience::FaultPlan plan;
  plan.seed = c.fault_seed;
  if (c.fault_rate > 0.0) plan.set_transport_rates(c.fault_rate);
  return plan;
}

std::uint64_t config_hash(const CampaignConfig& c) {
  return campaign::sweep_config_hash(to_sweep_spec(c));
}

std::string config_hash_hex(const CampaignConfig& c) {
  return hash_hex(config_hash(c));
}

}  // namespace rh::serve
