// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for readback-frame
// integrity checking.
//
// Why a CRC and not a checksum: the fault plane injects small bit-level
// corruptions into FIFO drains, and CRC-32 guarantees detection of any
// burst up to 32 bits and of all 1..3-bit errors for frames well beyond
// our row size (Hamming distance 4 holds past 11 KB; a readback frame is
// one DRAM row, ~1 KB). That guarantee is what lets the resilience tests
// assert *zero silent corruptions* rather than merely "usually detected".
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace rh::resilience {

/// CRC-32 of `data`, optionally continuing from a previous crc (chain calls
/// with the running value to checksum scattered buffers).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t crc = 0);

}  // namespace rh::resilience
