#include "resilience/storage.hpp"

#include <cctype>
#include <cstdio>
#include <filesystem>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "resilience/crc32.hpp"

#if __has_include(<unistd.h>) && __has_include(<fcntl.h>)
#include <fcntl.h>
#include <unistd.h>
#define RH_STORAGE_HAS_FSYNC 1
#endif

namespace rh::resilience {

namespace {

using common::ConfigError;
using common::StorageError;

// Distinct hash tags keep the storage plane's fire/shape streams
// decorrelated from the transport plane's (0xFA017/0x5AAFE in fault.cpp)
// even when both run off the same campaign seed.
constexpr std::uint64_t kFireTag = 0x5709A6Eu;
constexpr std::uint64_t kShapeTag = 0xD15C5Au;

constexpr std::size_t kFrameHexDigits = 8;
// '\t' + 8 hex digits.
constexpr std::size_t kFrameBytes = 1 + kFrameHexDigits;

std::uint32_t payload_crc(std::string_view payload) {
  return crc32({reinterpret_cast<const std::uint8_t*>(payload.data()), payload.size()});
}

void fsync_or_throw(std::FILE* file, const std::string& what, const std::string& path) {
  if (std::fflush(file) != 0) {
    throw StorageError("cannot flush " + what + ": " + path);
  }
#ifdef RH_STORAGE_HAS_FSYNC
  if (::fsync(fileno(file)) != 0) {
    throw StorageError("cannot fsync " + what + ": " + path);
  }
#endif
}

}  // namespace

void StorageFaultPlan::set_all_rates(double rate) {
  for (double& r : rates) r = rate;
}

bool StorageFaultPlan::enabled() const {
  if (!script.empty()) return true;
  for (const double rate : rates) {
    if (rate > 0.0) return true;
  }
  return false;
}

StorageFaultInjector::StorageFaultInjector(StorageFaultPlan plan) : plan_(std::move(plan)) {
  for (const double rate : plan_.rates) {
    RH_EXPECTS(rate >= 0.0 && rate <= 1.0);
  }
}

bool StorageFaultInjector::should_fire(StorageFaultKind kind) {
  const auto k = static_cast<std::size_t>(kind);
  const std::uint64_t opportunity = opportunities_[k]++;

  bool fire = false;
  for (const ScriptedStorageFault& scripted : plan_.script) {
    if (scripted.kind == kind && scripted.opportunity == opportunity) {
      fire = true;
      break;
    }
  }
  if (!fire && plan_.rates[k] > 0.0) {
    // Counter-based: kind k's stream is untouched by other kinds' draws.
    const std::uint64_t h = common::hash_coords(plan_.seed, kFireTag, k, opportunity);
    fire = common::to_unit_double(h) < plan_.rates[k];
  }
  if (fire) {
    log_.push_back({stats_.injected, kind, opportunity});
    ++stats_.injected;
    ++stats_.by_kind[k];
  }
  return fire;
}

std::uint64_t StorageFaultInjector::shape() {
  return common::hash_coords(plan_.seed, kShapeTag, shape_counter_++);
}

std::string StorageFaultInjector::log_string() const {
  std::string out;
  for (const StorageFaultRecord& record : log_) {
    out += std::to_string(record.sequence) + ' ';
    out += to_string(record.kind);
    out += '@' + std::to_string(record.opportunity);
    out += '\n';
  }
  return out;
}

std::string frame_line(std::string_view payload) {
  char frame[kFrameBytes + 1];
  std::snprintf(frame, sizeof frame, "\t%08x", payload_crc(payload));
  return std::string(payload) + frame;
}

FrameCheck check_frame(std::string_view line, std::string_view& payload) {
  payload = line;
  if (line.size() < kFrameBytes || line[line.size() - kFrameBytes] != '\t') {
    return FrameCheck::kUnframed;
  }
  const std::string_view hex = line.substr(line.size() - kFrameHexDigits);
  std::uint32_t stored = 0;
  for (const char c : hex) {
    if (c >= '0' && c <= '9') {
      stored = stored * 16 + static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      stored = stored * 16 + static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      // A tab this close to the end but no hex digest: not a frame. JSON
      // payloads escape tabs, so this only happens to damaged lines —
      // which the payload-level parse will then reject.
      return FrameCheck::kUnframed;
    }
  }
  payload = line.substr(0, line.size() - kFrameBytes);
  return payload_crc(payload) == stored ? FrameCheck::kFramed : FrameCheck::kMismatch;
}

DurableFile::DurableFile(std::string path, std::string what, bool truncate,
                         StorageFaultInjector* injector)
    : path_(std::move(path)), what_(std::move(what)), injector_(injector) {
  file_ = std::fopen(path_.c_str(), truncate ? "wb" : "r+b");
  if (file_ == nullptr) {
    throw ConfigError("cannot " + std::string(truncate ? "create" : "reopen") + " " + what_ +
                      ": " + path_);
  }
  if (!truncate) {
    if (std::fseek(file_, 0, SEEK_END) != 0) {
      std::fclose(file_);
      file_ = nullptr;
      throw ConfigError("cannot seek to end of " + what_ + ": " + path_);
    }
    offset_ = static_cast<std::uint64_t>(std::ftell(file_));
  }
}

DurableFile::~DurableFile() {
  if (file_ != nullptr) std::fclose(file_);
}

void DurableFile::flush_and_sync() { fsync_or_throw(file_, what_, path_); }

void DurableFile::corrupt_on_disk(std::uint64_t offset, std::size_t length) {
  // A separate descriptor: file_ is in append position, and on POSIX an
  // "a"-mode stream writes at end-of-file regardless of seeks anyway.
  std::FILE* side = std::fopen(path_.c_str(), "r+b");
  if (side == nullptr) return;  // best-effort rot; the write itself succeeded
  const std::uint32_t bits = injector_->plan().corrupt_bits > 0
                                 ? injector_->plan().corrupt_bits
                                 : 1;
  for (std::uint32_t i = 0; i < bits; ++i) {
    const auto pos = static_cast<long>(offset + injector_->shape() % length);
    const auto bit = static_cast<int>(injector_->shape() % 8);
    if (std::fseek(side, pos, SEEK_SET) != 0) break;
    const int c = std::fgetc(side);
    if (c == EOF) break;
    if (std::fseek(side, pos, SEEK_SET) != 0) break;
    if (std::fputc(c ^ (1 << bit), side) == EOF) break;
  }
  std::fflush(side);
#ifdef RH_STORAGE_HAS_FSYNC
  ::fsync(fileno(side));
#endif
  std::fclose(side);
}

void DurableFile::write_line(std::string_view line) {
  if (injector_ != nullptr) {
    if (injector_->should_fire(StorageFaultKind::kEnospc)) {
      throw StorageError("injected ENOSPC on " + what_ + ": " + path_);
    }
    if (!line.empty() && injector_->should_fire(StorageFaultKind::kShortWrite)) {
      // A strict prefix reaches the file and the write reports failure —
      // the torn tail the reader must later shrug off.
      const std::size_t keep = injector_->shape() % line.size();
      if (keep > 0 && std::fwrite(line.data(), 1, keep, file_) != keep) {
        throw StorageError("cannot write " + what_ + ": " + path_);
      }
      std::fflush(file_);
      offset_ += keep;
      throw StorageError("injected short write (" + std::to_string(keep) + "/" +
                         std::to_string(line.size()) + " bytes) on " + what_ + ": " + path_);
    }
    if (!line.empty() && injector_->should_fire(StorageFaultKind::kTornLine)) {
      // The nastier variant: a prefix lands with NO error reported (power
      // cut after the page-cache copy). If this was the last write the file
      // just has a torn tail; if more lines follow, the tear fuses with the
      // next line into mid-file corruption — exactly what quarantine resume
      // and rh_fsck exist for.
      const std::size_t keep = 1 + injector_->shape() % line.size();
      if (std::fwrite(line.data(), 1, keep, file_) != keep) {
        throw StorageError("cannot write " + what_ + ": " + path_);
      }
      flush_and_sync();
      offset_ += keep;
      return;
    }
  }

  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fputc('\n', file_) == EOF) {
    throw StorageError("cannot write " + what_ + ": " + path_);
  }
  if (std::fflush(file_) != 0) {
    throw StorageError("cannot flush " + what_ + ": " + path_);
  }
  if (injector_ != nullptr && !line.empty() &&
      injector_->should_fire(StorageFaultKind::kBitCorrupt)) {
    // The line is on disk and the writer saw success; the medium then rots
    // corrupt_bits bits inside it (never the newline — byte rot within a
    // line is the CRC's job; eaten line breaks are the torn-line fault's).
    corrupt_on_disk(offset_, line.size());
  }
  if (injector_ != nullptr && injector_->should_fire(StorageFaultKind::kFsyncFail)) {
    offset_ += line.size() + 1;
    throw StorageError("injected fsync failure on " + what_ + ": " + path_);
  }
  flush_and_sync();
  offset_ += line.size() + 1;
}

void write_file_atomic(const std::string& path, std::string_view text,
                       const std::string& what, StorageFaultInjector* injector) {
  if (injector != nullptr && injector->should_fire(StorageFaultKind::kEnospc)) {
    throw StorageError("injected ENOSPC writing " + what + ": " + path);
  }
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    throw ConfigError("cannot create " + what + " temp file: " + tmp);
  }
  const bool short_write =
      injector != nullptr && !text.empty() && injector->should_fire(StorageFaultKind::kShortWrite);
  const std::size_t n = short_write ? injector->shape() % text.size() : text.size();
  if (std::fwrite(text.data(), 1, n, file) != n) {
    std::fclose(file);
    throw StorageError("cannot write " + what + ": " + tmp);
  }
  if (short_write) {
    // The torn .tmp stays behind (an orphan for rh_fsck); `path` itself is
    // untouched — that is the whole point of the write-then-rename shape.
    std::fflush(file);
    std::fclose(file);
    throw StorageError("injected short write (" + std::to_string(n) + "/" +
                       std::to_string(text.size()) + " bytes) on " + what + ": " + tmp);
  }
  try {
    // fsync BEFORE rename: otherwise a power loss can leave the rename
    // durable but the data not, i.e. a valid-looking empty/garbage file
    // where the old good content used to be.
    fsync_or_throw(file, what, tmp);
  } catch (...) {
    std::fclose(file);
    throw;
  }
  if (injector != nullptr && injector->should_fire(StorageFaultKind::kFsyncFail)) {
    std::fclose(file);
    throw StorageError("injected fsync failure on " + what + ": " + tmp);
  }
  std::fclose(file);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw ConfigError("cannot rename " + what + " into place: " + path);
  }
#ifdef RH_STORAGE_HAS_FSYNC
  // fsync the parent directory so the rename itself survives power loss.
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
      throw StorageError("cannot fsync parent directory of " + what + ": " + dir);
    }
  }
#endif
}

}  // namespace rh::resilience
