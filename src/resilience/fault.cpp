#include "resilience/fault.hpp"

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace rh::resilience {

void FaultPlan::set_transport_rates(double rate) {
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    if (is_transport_fault(static_cast<FaultKind>(k))) rates[k] = rate;
  }
}

bool FaultPlan::enabled() const {
  if (!script.empty()) return true;
  for (const double rate : rates) {
    if (rate > 0.0) return true;
  }
  return false;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const double rate : plan_.rates) {
    RH_EXPECTS(rate >= 0.0 && rate <= 1.0);
  }
}

bool FaultInjector::should_fire(FaultKind kind) {
  const auto k = static_cast<std::size_t>(kind);
  const std::uint64_t opportunity = opportunities_[k]++;

  bool fire = false;
  for (const ScriptedFault& scripted : plan_.script) {
    if (scripted.kind == kind && scripted.opportunity == opportunity) {
      fire = true;
      break;
    }
  }
  if (!fire && plan_.rates[k] > 0.0) {
    // Counter-based: kind k's stream is untouched by other kinds' draws.
    const std::uint64_t h = common::hash_coords(plan_.seed, 0xFA017u, k, opportunity);
    fire = common::to_unit_double(h) < plan_.rates[k];
  }
  if (fire) {
    log_.push_back({stats_.injected, kind, opportunity, FaultResolution::kPending, ""});
    ++stats_.injected;
    ++stats_.by_kind[k];
  }
  return fire;
}

std::uint64_t FaultInjector::shape() {
  return common::hash_coords(plan_.seed, 0x5AAFEu, shape_counter_++);
}

void FaultInjector::resolve(FaultKind kind, FaultResolution resolution,
                            const std::string& detail) {
  for (auto it = log_.rbegin(); it != log_.rend(); ++it) {
    if (it->kind == kind && it->resolution == FaultResolution::kPending) {
      it->resolution = resolution;
      it->detail = detail;
      return;
    }
  }
  // A resolution with no pending injection is a host bookkeeping bug.
  RH_EXPECTS(false);
}

void FaultInjector::note_recovered(FaultKind kind, const std::string& detail) {
  ++stats_.recovered;
  resolve(kind, FaultResolution::kRecovered, detail);
}

void FaultInjector::note_aborted(FaultKind kind, const std::string& detail) {
  ++stats_.aborted;
  resolve(kind, FaultResolution::kAborted, detail);
}

std::string FaultInjector::log_string() const {
  std::string out;
  for (const FaultRecord& record : log_) {
    out += std::to_string(record.sequence) + ' ';
    out += to_string(record.kind);
    out += '@' + std::to_string(record.opportunity);
    switch (record.resolution) {
      case FaultResolution::kPending: out += " pending"; break;
      case FaultResolution::kRecovered: out += " recovered"; break;
      case FaultResolution::kAborted: out += " aborted"; break;
    }
    if (!record.detail.empty()) out += " [" + record.detail + ']';
    out += '\n';
  }
  return out;
}

}  // namespace rh::resilience
