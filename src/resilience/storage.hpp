// The storage fault-injection plane and the durable-file primitives built
// on top of it.
//
// PR 3 gave the transport layer deterministic chaos (resilience::FaultInjector)
// and property-tested recovery; this module is the same pattern pointed at
// the other thing that fails in a multi-hour campaign: the disk. Journals,
// metrics streams, and job descriptors are the only state that survives a
// SIGKILL, so their write paths get a pluggable fault plane of their own —
// short writes, failed fsyncs, post-write bit rot, torn lines, ENOSPC —
// and the recovery code (corruption-tolerant readers, quarantine resume,
// rh_fsck) is regression-tested against every one of them.
//
// Determinism contract mirrors fault.hpp: whether the i-th opportunity of
// storage-fault kind k fires is hash(seed, k, i) < rate[k], or an exact
// scripted match — per-kind streams are independent, so two runs of the
// same write sequence against the same (seed, plan) tear the same bytes.
//
// Layering:
//   StorageFaultInjector  — the deterministic "when does the disk lie" oracle
//   frame_line/check_frame — CRC-32 per-line framing (the v2 record format)
//   DurableFile           — append-one-line-then-fsync with injection points
//   write_file_atomic     — write-tmp / fsync-tmp / rename / fsync-dir
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace rh::resilience {

/// Everything the storage plane knows how to break, in the order the write
/// path offers the opportunities.
enum class StorageFaultKind : std::uint8_t {
  kEnospc = 0,      ///< write refused outright (disk full) — nothing lands
  kShortWrite,      ///< a strict prefix of the line reaches the file, then error
  kTornLine,        ///< a prefix lands *silently* (power cut between writes)
  kBitCorrupt,      ///< the line lands whole, then bits rot on the medium
  kFsyncFail,       ///< data written but the sync barrier reports failure
};

inline constexpr std::size_t kStorageFaultKindCount = 5;

[[nodiscard]] constexpr std::string_view to_string(StorageFaultKind kind) {
  switch (kind) {
    case StorageFaultKind::kEnospc: return "enospc";
    case StorageFaultKind::kShortWrite: return "short-write";
    case StorageFaultKind::kTornLine: return "torn-line";
    case StorageFaultKind::kBitCorrupt: return "bit-corrupt";
    case StorageFaultKind::kFsyncFail: return "fsync-fail";
  }
  return "?";
}

/// One scripted storage fault: fire `kind` on its `opportunity`-th
/// opportunity (0-based, counted per kind). Scripted entries fire
/// regardless of rates — exact failure placement for the damage matrix.
struct ScriptedStorageFault {
  StorageFaultKind kind = StorageFaultKind::kEnospc;
  std::uint64_t opportunity = 0;
};

/// The reproducible description of a disk-fault storm.
struct StorageFaultPlan {
  std::uint64_t seed = 0;
  /// Per-kind probability that one opportunity fires (by StorageFaultKind).
  std::array<double, kStorageFaultKindCount> rates{};
  /// Exact schedule, honoured in addition to the rates.
  std::vector<ScriptedStorageFault> script;
  /// Bits flipped per bit-corrupt fault (CRC-32 detects any 1..3-bit error).
  std::uint32_t corrupt_bits = 2;

  [[nodiscard]] double rate(StorageFaultKind kind) const {
    return rates[static_cast<std::size_t>(kind)];
  }
  void set_rate(StorageFaultKind kind, double rate) {
    rates[static_cast<std::size_t>(kind)] = rate;
  }
  /// Arms every fault kind at `rate` — the disk-storm configuration.
  void set_all_rates(double rate);
  /// True when any rate is non-zero or the script is non-empty.
  [[nodiscard]] bool enabled() const;
};

/// One entry of the storage-fault event log.
struct StorageFaultRecord {
  std::uint64_t sequence = 0;     ///< global injection order
  StorageFaultKind kind = StorageFaultKind::kEnospc;
  std::uint64_t opportunity = 0;  ///< per-kind opportunity index that fired
};

/// Drives one file family's storage-fault schedule.
///
/// Thread-compatibility: not internally synchronized — an injector belongs
/// to one writer (journal writers append under the campaign/job lock, the
/// stream writer brings its own mutex).
class StorageFaultInjector {
public:
  explicit StorageFaultInjector(StorageFaultPlan plan);

  /// Consumes one opportunity of `kind`; true when the fault fires (the
  /// injection is appended to the log before returning).
  [[nodiscard]] bool should_fire(StorageFaultKind kind);

  /// Deterministic fault-shaping randomness (how many bytes of a short
  /// write land, which bits rot): a counter-based hash stream independent
  /// of the firing decisions.
  [[nodiscard]] std::uint64_t shape();

  struct Stats {
    std::uint64_t injected = 0;
    std::array<std::uint64_t, kStorageFaultKindCount> by_kind{};
  };

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<StorageFaultRecord>& log() const { return log_; }
  [[nodiscard]] const StorageFaultPlan& plan() const { return plan_; }

  /// Canonical one-line-per-event rendering ("2 torn-line@14") — what the
  /// determinism tests compare across runs.
  [[nodiscard]] std::string log_string() const;

private:
  StorageFaultPlan plan_;
  std::array<std::uint64_t, kStorageFaultKindCount> opportunities_{};
  std::uint64_t shape_counter_ = 0;
  std::vector<StorageFaultRecord> log_;
  Stats stats_;
};

// ---------------------------------------------------------------------------
// CRC-32 line framing: the v2 record format shared by the campaign journal
// and the metrics stream.
//
//   <payload> '\t' <8 lowercase hex digits of crc32(payload)>
//
// Payloads are compact JSON documents and never contain a tab, so the frame
// is unambiguous; the frame is a pure function of the payload, so every
// byte-identity property over payloads survives framing. v1 lines (bare
// payloads) stay readable: check_frame() reports them as kUnframed and the
// readers accept them without integrity checking.
// ---------------------------------------------------------------------------

/// Result of inspecting one line for a CRC frame.
enum class FrameCheck : std::uint8_t {
  kFramed = 0,  ///< well-formed frame, CRC matches the payload
  kUnframed,    ///< no frame present (a v1 line) — payload is the whole line
  kMismatch,    ///< frame present but the CRC disagrees: the line is corrupt
};

/// Appends the CRC-32 frame to `payload`.
[[nodiscard]] std::string frame_line(std::string_view payload);

/// Classifies `line` and extracts its payload (the whole line for
/// kUnframed, the pre-frame prefix otherwise — also for kMismatch, so
/// callers can quote the damaged payload in diagnostics).
[[nodiscard]] FrameCheck check_frame(std::string_view line, std::string_view& payload);

// ---------------------------------------------------------------------------
// Durable write primitives.
// ---------------------------------------------------------------------------

/// Append-one-line-then-fsync file handle with storage-fault injection
/// points, adopted by the journal and metrics-stream writers.
///
/// Real I/O failures and injected kEnospc / kShortWrite / kFsyncFail throw
/// common::StorageError; kTornLine returns silently with only a prefix on
/// disk (that is the point: the writer believes the line landed);
/// kBitCorrupt lands the whole line and then flips plan.corrupt_bits bits
/// in it through a separate descriptor. Open/creation failures throw
/// common::ConfigError (a path problem, not a durability event).
class DurableFile {
public:
  /// `what` names the file family in error messages ("checkpoint journal").
  /// Truncates (fresh) or appends (resume); `injector` may be null and must
  /// outlive the file.
  DurableFile(std::string path, std::string what, bool truncate,
              StorageFaultInjector* injector);
  ~DurableFile();

  DurableFile(const DurableFile&) = delete;
  DurableFile& operator=(const DurableFile&) = delete;

  /// Writes `line` plus '\n', flushed and fsync'd, with injection points
  /// before (ENOSPC), during (short write, torn line), and after (bit
  /// corruption, fsync failure) the write.
  void write_line(std::string_view line);

  [[nodiscard]] const std::string& path() const { return path_; }

private:
  void flush_and_sync();
  void corrupt_on_disk(std::uint64_t offset, std::size_t length);

  std::FILE* file_ = nullptr;
  std::string path_;
  std::string what_;
  StorageFaultInjector* injector_ = nullptr;
  std::uint64_t offset_ = 0;  ///< current end-of-file position
};

/// Atomically replaces `path` with `text`: write `path`.tmp, fsync it,
/// rename over `path`, fsync the parent directory. A kill at any point
/// leaves either the old content or the new content at `path` — never a
/// torn file (the orphaned .tmp is rh_fsck fodder, not corruption).
///
/// Injection points: kEnospc (before anything lands), kShortWrite (a torn
/// .tmp is left behind, `path` untouched), kFsyncFail (tmp written but the
/// barrier failed — the caller must assume the new content is not durable).
/// Whole-file replacement has no append seam, so kTornLine/kBitCorrupt do
/// not apply here. Failures throw common::StorageError; open/rename
/// problems throw common::ConfigError.
void write_file_atomic(const std::string& path, std::string_view text,
                       const std::string& what, StorageFaultInjector* injector = nullptr);

}  // namespace rh::resilience
