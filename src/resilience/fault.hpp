// The infrastructure fault-injection plane.
//
// The paper's measurements come from a physical rig — DRAM Bender over PCIe,
// a PID-driven heater — where transfers drop, readback FIFOs return garbage,
// and the thermal plant wanders mid-experiment. This module injects those
// failure modes into the simulator's transport/thermal/executor layers so
// the host-side recovery code (bender::BenderHost, campaign::Campaign) can
// be exercised and regression-tested under reproducible chaos.
//
// Determinism contract: the fault stream is a pure function of
// (plan.seed, plan). Whether the i-th *opportunity* of fault kind k fires is
//   hash(seed, k, i) < rate[k]      (rate-driven faults)
// or an exact match against the scripted schedule — never a draw from a
// shared sequential RNG — so interleaving opportunities of different kinds
// does not perturb each other, and two runs of the same workload against
// the same (seed, plan) observe byte-identical fault/recovery event logs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rh::resilience {

/// Everything the plane knows how to break, layer by layer.
enum class FaultKind : std::uint8_t {
  kUploadTimeout = 0,   ///< host->FPGA DMA never completes (watchdog fires)
  kUploadDrop,          ///< upload transmitted but the completion ack is lost
  kReadbackCorrupt,     ///< FIFO drain delivered with flipped payload bits
  kReadbackShortRead,   ///< FIFO drain ends early; a strict prefix arrives
  kExecutorStall,       ///< FPGA never starts the program (doorbell lost)
  kThermalExcursion,    ///< chip temperature jumps out of the control band
  kThermalDrift,        ///< thermal plant's ambient shifts (persistent bias)
};

inline constexpr std::size_t kFaultKindCount = 7;

[[nodiscard]] constexpr std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kUploadTimeout: return "upload-timeout";
    case FaultKind::kUploadDrop: return "upload-drop";
    case FaultKind::kReadbackCorrupt: return "readback-corrupt";
    case FaultKind::kReadbackShortRead: return "readback-short-read";
    case FaultKind::kExecutorStall: return "executor-stall";
    case FaultKind::kThermalExcursion: return "thermal-excursion";
    case FaultKind::kThermalDrift: return "thermal-drift";
  }
  return "?";
}

/// True for the PCIe-layer faults (the ones whose recovery provably leaves
/// the device timeline untouched, so campaign results stay byte-identical).
[[nodiscard]] constexpr bool is_transport_fault(FaultKind kind) {
  switch (kind) {
    case FaultKind::kUploadTimeout:
    case FaultKind::kUploadDrop:
    case FaultKind::kReadbackCorrupt:
    case FaultKind::kReadbackShortRead:
    case FaultKind::kExecutorStall:
      return true;
    case FaultKind::kThermalExcursion:
    case FaultKind::kThermalDrift:
      return false;
  }
  return false;
}

/// One scripted fault: fire `kind` on its `opportunity`-th opportunity
/// (0-based, counted per kind). Scripted entries fire regardless of rates,
/// which gives tests exact control over failure placement.
struct ScriptedFault {
  FaultKind kind = FaultKind::kUploadTimeout;
  std::uint64_t opportunity = 0;
};

/// The reproducible description of a fault campaign: seed, per-kind rates,
/// explicit script, and fault magnitudes. (seed, plan) => identical stream.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Per-kind probability that one opportunity fires (indexed by FaultKind).
  std::array<double, kFaultKindCount> rates{};
  /// Exact schedule, honoured in addition to the rates.
  std::vector<ScriptedFault> script;

  // Fault magnitudes.
  double excursion_c = 5.0;        ///< thermal excursion jump, degC
  double drift_c = 1.5;            ///< ambient drift magnitude, degC
  std::uint32_t corrupt_bits = 3;  ///< payload bits flipped per corrupt drain

  [[nodiscard]] double rate(FaultKind kind) const {
    return rates[static_cast<std::size_t>(kind)];
  }
  void set_rate(FaultKind kind, double rate) {
    rates[static_cast<std::size_t>(kind)] = rate;
  }
  /// Arms every transport-layer fault (timeout, drop, corrupt, short-read,
  /// stall) at `rate` — the fault-storm configuration.
  void set_transport_rates(double rate);
  /// True when any rate is non-zero or the script is non-empty.
  [[nodiscard]] bool enabled() const;
};

/// How an injected fault was eventually resolved by the layer that hit it.
enum class FaultResolution : std::uint8_t {
  kPending = 0,  ///< injected, resolution not yet reported
  kRecovered,    ///< detected and healed (retry / re-drain / re-settle)
  kAborted,      ///< detected but the recovery budget ran out
};

/// One entry of the fault/recovery event log.
struct FaultRecord {
  std::uint64_t sequence = 0;     ///< global injection order
  FaultKind kind = FaultKind::kUploadTimeout;
  std::uint64_t opportunity = 0;  ///< per-kind opportunity index that fired
  FaultResolution resolution = FaultResolution::kPending;
  std::string detail;             ///< recovery-site note ("retry 2/4", ...)
};

/// Drives one host's fault schedule and records the fault/recovery stream.
///
/// Thread-compatibility: an injector belongs to exactly one host (the
/// campaign builds one per worker rig); it is not internally synchronized.
class FaultInjector {
public:
  explicit FaultInjector(FaultPlan plan);

  /// Consumes one opportunity of `kind`; true when the fault fires (the
  /// injection is appended to the log before returning).
  [[nodiscard]] bool should_fire(FaultKind kind);

  /// Deterministic fault-shaping randomness (which bits corrupt, excursion
  /// sign, prefix length): a counter-based hash stream independent of the
  /// firing decisions.
  [[nodiscard]] std::uint64_t shape();

  /// Marks the most recent unresolved injection of `kind`. The host calls
  /// these at its recovery sites; the pair (injection, resolution) is what
  /// the determinism tests compare across runs.
  void note_recovered(FaultKind kind, const std::string& detail);
  void note_aborted(FaultKind kind, const std::string& detail);

  struct Stats {
    std::uint64_t injected = 0;
    std::uint64_t recovered = 0;
    std::uint64_t aborted = 0;
    std::array<std::uint64_t, kFaultKindCount> by_kind{};
  };

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<FaultRecord>& log() const { return log_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Canonical one-line-per-event rendering of the log
  /// ("3 upload-timeout@7 recovered [retry 1/4]") — the string the
  /// determinism contract is asserted on.
  [[nodiscard]] std::string log_string() const;

private:
  void resolve(FaultKind kind, FaultResolution resolution, const std::string& detail);

  FaultPlan plan_;
  std::array<std::uint64_t, kFaultKindCount> opportunities_{};
  std::uint64_t shape_counter_ = 0;
  std::vector<FaultRecord> log_;
  Stats stats_;
};

}  // namespace rh::resilience
