// Host-side retry policy: bounded attempts with deterministic exponential
// backoff and jitter.
//
// The backoff for (operation, attempt) is a pure function of the policy —
// jitter comes from a counter-based hash, not a shared RNG — so a retried
// run charges exactly the same wall-clock penalty every time. The penalty
// lands on the host's wall-clock accumulator (BenderHost::wall_ms), never
// on the device clock: between programs the FPGA holds the DRAM in its
// idle/refresh state, so host-side dithering must not advance simulated
// DRAM time (that would perturb retention and break the byte-identical
// recovery guarantee the fault-storm bench asserts).
#pragma once

#include <cstdint>

namespace rh::resilience {

struct RetryPolicy {
  /// Total attempts per operation (1 = no retries).
  unsigned max_attempts = 4;
  /// First retry's backoff, milliseconds.
  double backoff_base_ms = 2.0;
  /// Growth factor per additional retry.
  double backoff_multiplier = 2.0;
  /// Backoff ceiling, milliseconds.
  double backoff_max_ms = 250.0;
  /// Jitter as a fraction of the backoff: the wait is scaled by a
  /// deterministic factor in [1 - jitter_frac, 1 + jitter_frac].
  double jitter_frac = 0.25;
  /// Seed of the jitter hash stream.
  std::uint64_t jitter_seed = 0x7e717e5ULL;
};

/// Backoff before retry `attempt` (1-based: the wait after the attempt-th
/// failure) of operation `op`. Deterministic in (policy, op, attempt).
[[nodiscard]] double backoff_ms(const RetryPolicy& policy, std::uint64_t op, unsigned attempt);

}  // namespace rh::resilience
