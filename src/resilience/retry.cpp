#include "resilience/retry.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace rh::resilience {

double backoff_ms(const RetryPolicy& policy, std::uint64_t op, unsigned attempt) {
  const double exponent = attempt > 0 ? static_cast<double>(attempt - 1) : 0.0;
  const double base =
      std::min(policy.backoff_max_ms,
               policy.backoff_base_ms * std::pow(policy.backoff_multiplier, exponent));
  const std::uint64_t h = common::hash_coords(policy.jitter_seed, 0xBAC0FFu, op, attempt);
  const double unit = common::to_unit_double(h);  // [0, 1)
  return base * (1.0 + policy.jitter_frac * (2.0 * unit - 1.0));
}

}  // namespace rh::resilience
