// The FPGA-side program executor.
//
// Runs one Bender program against one pseudo channel of the device, with the
// exact cycle accounting the ProgramBuilder assumes: one cycle per
// instruction, 1+imm for SLEEP, and the unrolled-equivalent duration for the
// HAMMER macro-ops. Collects RD bursts into a readback FIFO that the host
// drains after the run (the PCIe DMA path of the real infrastructure).
#pragma once

#include <cstdint>
#include <vector>

#include "bender/program.hpp"
#include "hbm/device.hpp"

namespace rh::bender {

struct ExecutionResult {
  /// RD bursts in program order, bytes_per_column each.
  std::vector<std::uint8_t> readback;
  hbm::Cycle start_cycle = 0;
  hbm::Cycle end_cycle = 0;
  std::uint64_t instructions_executed = 0;

  [[nodiscard]] hbm::Cycle cycles() const { return end_cycle - start_cycle; }
  [[nodiscard]] double elapsed_ms() const { return hbm::cycles_to_ms(cycles()); }
};

class Executor {
public:
  explicit Executor(hbm::Device& device) : device_(&device) {}

  /// Executes `program` on (channel, pseudo_channel), with the global clock
  /// starting at `start`. Throws ProgramError if the instruction budget is
  /// exceeded (runaway loop) and propagates device Timing/Protocol errors.
  ExecutionResult run(const Program& program, std::uint32_t channel,
                      std::uint32_t pseudo_channel, hbm::Cycle start,
                      std::uint64_t instruction_budget = 100'000'000);

private:
  hbm::Device* device_;
};

}  // namespace rh::bender
