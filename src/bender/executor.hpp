// The FPGA-side program executor.
//
// Runs one Bender program against one pseudo channel of the device, with the
// exact cycle accounting the ProgramBuilder assumes: one cycle per
// instruction, 1+imm for SLEEP, and the unrolled-equivalent duration for the
// HAMMER macro-ops. Collects RD bursts into a readback FIFO that the host
// drains after the run (the PCIe DMA path of the real infrastructure).
#pragma once

#include <cstdint>
#include <vector>

#include "bender/program.hpp"
#include "hbm/device.hpp"

namespace rh::bender {

/// Per-run command mix and throughput, filled by the executor on every
/// successful run. ACTs include the unrolled equivalents of HAMMER
/// macro-ops, so the mix matches what real silicon would have seen.
struct RunMetrics {
  std::uint64_t acts = 0;
  std::uint64_t precharges = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t mode_register_writes = 0;

  /// Simulated wall-clock time the program occupied the interface.
  double sim_wall_ms = 0.0;
  /// Host-side (simulator) execution time of the run.
  double host_seconds = 0.0;
  /// ACT commands per simulated second (the paper's hammer-rate axis).
  double act_rate_hz = 0.0;
  /// Executed Bender instructions per host second (simulator throughput).
  double instructions_per_second = 0.0;
};

struct ExecutionResult {
  /// RD bursts in program order, bytes_per_column each.
  std::vector<std::uint8_t> readback;
  hbm::Cycle start_cycle = 0;
  hbm::Cycle end_cycle = 0;
  std::uint64_t instructions_executed = 0;
  /// Command mix and throughput snapshot for this run.
  RunMetrics metrics;

  [[nodiscard]] hbm::Cycle cycles() const { return end_cycle - start_cycle; }
  [[nodiscard]] double elapsed_ms() const { return hbm::cycles_to_ms(cycles()); }
};

class Executor {
public:
  explicit Executor(hbm::Device& device) : device_(&device) {}

  /// Executes `program` on (channel, pseudo_channel), with the global clock
  /// starting at `start`. Throws ProgramError if the instruction budget is
  /// exceeded (runaway loop) and propagates device Timing/Protocol errors;
  /// propagated rh::common::Errors carry executed-instruction count, program
  /// counter, the offending instruction's disassembly, and the cycle as
  /// attached context, so failed runs are diagnosable from what() alone.
  ExecutionResult run(const Program& program, std::uint32_t channel,
                      std::uint32_t pseudo_channel, hbm::Cycle start,
                      std::uint64_t instruction_budget = 100'000'000);

private:
  hbm::Device* device_;
};

}  // namespace rh::bender
