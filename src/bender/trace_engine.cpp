#include "bender/trace_engine.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <string>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace rh::bender {

namespace {

hbm::Cycle hammer_period_for(const hbm::TimingParams& timings, std::int64_t on_time) {
  const hbm::Cycle on = std::max<hbm::Cycle>(static_cast<hbm::Cycle>(on_time), timings.tRAS);
  return std::max(timings.tRC, on + timings.tRP);
}

hbm::Cycle static_cost(const Instruction& ins, const hbm::TimingParams& timings) {
  switch (ins.op) {
    case Opcode::kSleep:
      return 1 + static_cast<hbm::Cycle>(ins.imm);
    case Opcode::kHammer:
      return static_cast<hbm::Cycle>(ins.imm) * 2 * hammer_period_for(timings, ins.imm2);
    case Opcode::kHammerSingle:
      return static_cast<hbm::Cycle>(ins.imm) * hammer_period_for(timings, ins.imm2);
    default:
      return 1;
  }
}

bool is_device_op(Opcode op) {
  switch (op) {
    case Opcode::kAct:
    case Opcode::kPre:
    case Opcode::kPreA:
    case Opcode::kRd:
    case Opcode::kWr:
    case Opcode::kRef:
    case Opcode::kHammer:
    case Opcode::kHammerSingle:
      return true;
    default:
      return false;
  }
}

}  // namespace

TraceEngine::Decoded TraceEngine::decode(const Program& program,
                                         const hbm::TimingParams& timings) const {
  const auto& code = program.instructions();
  Decoded d;
  d.cost.reserve(code.size());
  for (const Instruction& ins : code) d.cost.push_back(static_cost(ins, timings));
  d.loop_at.assign(code.size(), -1);

  for (std::size_t p = 0; p < code.size(); ++p) {
    const Instruction& blt = code[p];
    if (blt.op != Opcode::kBlt) continue;
    const auto target = static_cast<std::size_t>(blt.imm);
    if (target >= p) continue;  // forward branch: not a loop

    // Pass 1: per-register write counts and opcode eligibility.
    std::array<std::uint8_t, kScalarRegisters> writes{};
    bool viable = true;
    for (std::size_t q = target; q < p && viable; ++q) {
      const Instruction& ins = code[q];
      switch (ins.op) {
        case Opcode::kNop:
        case Opcode::kSleep:
          break;
        case Opcode::kLdi:
          if (++writes[ins.rd] > 1) viable = false;
          break;
        case Opcode::kAddi:
          // Only self-accumulating ADDIs have a closed form per iteration.
          if (ins.rd != ins.rs1 || ++writes[ins.rd] > 1) viable = false;
          break;
        default:
          if (!is_device_op(ins.op)) viable = false;
          break;
      }
    }
    if (!viable) continue;

    // Pass 2: operand invariance — device operand registers and the loop
    // bound must not change inside the body; the BLT induction register
    // must be exactly one positive-step ADDI.
    if (writes[blt.rs2] != 0) continue;
    LoopInfo info;
    info.target = target;
    info.blt_pc = p;
    info.body_len = static_cast<std::uint64_t>(p - target) + 1;
    info.induction_reg = blt.rs1;
    info.bound_reg = blt.rs2;
    hbm::Cycle off = 1;  // the taken BLT itself costs one cycle
    for (std::size_t q = target; q < p && viable; ++q) {
      const Instruction& ins = code[q];
      switch (ins.op) {
        case Opcode::kLdi:
          info.reg_effects.push_back({ins.rd, /*is_ldi=*/true, ins.imm});
          break;
        case Opcode::kAddi:
          if (ins.rd == blt.rs1) {
            if (ins.imm <= 0) viable = false;
            info.induction_step = ins.imm;
          }
          info.reg_effects.push_back({ins.rd, /*is_ldi=*/false, ins.imm});
          break;
        case Opcode::kAct:
        case Opcode::kRd:
        case Opcode::kHammerSingle:
          if (writes[ins.rs1] != 0) viable = false;
          break;
        case Opcode::kWr:
          if (writes[ins.rs1] != 0) viable = false;
          break;
        case Opcode::kHammer:
          if (writes[ins.rs1] != 0 || writes[ins.rs2] != 0) viable = false;
          break;
        default:
          break;
      }
      if (is_device_op(ins.op)) {
        // Zero-count hammers issue nothing; their cost still shapes the
        // cadence.
        const bool issues =
            (ins.op != Opcode::kHammer && ins.op != Opcode::kHammerSingle) || ins.imm > 0;
        if (issues) info.records.push_back({q, off});
      }
      off += d.cost[q];
    }
    if (!viable || info.induction_step <= 0) continue;
    info.delta_t = off;
    d.loop_at[p] = static_cast<std::int32_t>(d.loops.size());
    d.loops.push_back(std::move(info));
  }
  return d;
}

ExecutionResult TraceEngine::run(const Program& program, std::uint32_t channel,
                                 std::uint32_t pseudo_channel, hbm::Cycle start,
                                 std::uint64_t instruction_budget) {
  program.validate(device_->geometry());
  const auto& code = program.instructions();
  const auto& geometry = device_->geometry();
  const auto& timings = device_->timings();
  const Decoded decoded = decode(program, timings);

  ExecutionResult result;
  result.start_cycle = start;

  const auto host_start = std::chrono::steady_clock::now();
  std::array<std::int64_t, kScalarRegisters> regs{};
  std::vector<std::uint8_t> burst(geometry.bytes_per_column);
  hbm::Cycle t = start;
  std::size_t pc = 0;
  std::uint64_t executed = 0;
  RunMetrics metrics;

  const auto bank_addr = [&](std::uint8_t bank) {
    return hbm::BankAddress{channel, pseudo_channel, bank};
  };
  const auto reg_row = [&](std::uint8_t reg) {
    const std::int64_t row = regs[reg];
    if (row < 0 || row >= static_cast<std::int64_t>(geometry.rows_per_bank)) {
      throw common::ProgramError("row register value out of range: " + std::to_string(row));
    }
    return static_cast<std::uint32_t>(row);
  };
  const auto reg_col = [&](std::uint8_t reg) {
    const std::int64_t col = regs[reg];
    if (col < 0 || col >= static_cast<std::int64_t>(geometry.columns_per_row)) {
      throw common::ProgramError("column register value out of range: " + std::to_string(col));
    }
    return static_cast<std::uint32_t>(col);
  };

  // Issues one device record during fast-forward replay, with the stepping
  // state (pc / current / executed / t) mirrored first so a device throw
  // carries exactly the context the interpreter would have attached.
  const Instruction* current = nullptr;
  const auto issue_record = [&](const Record& rec, hbm::Cycle when) {
    const Instruction& ins = code[rec.pc];
    pc = rec.pc;
    current = &ins;
    t = when;
    switch (ins.op) {
      case Opcode::kAct:
        device_->activate(bank_addr(ins.bank), reg_row(ins.rs1), when);
        ++metrics.acts;
        break;
      case Opcode::kPre:
        device_->precharge(bank_addr(ins.bank), when);
        ++metrics.precharges;
        break;
      case Opcode::kPreA:
        device_->precharge_all(channel, pseudo_channel, when);
        ++metrics.precharges;
        break;
      case Opcode::kRd: {
        const std::uint32_t col = reg_col(ins.rs1);
        device_->read(bank_addr(ins.bank), col, when, burst);
        result.readback.insert(result.readback.end(), burst.begin(), burst.end());
        ++metrics.reads;
        break;
      }
      case Opcode::kWr: {
        const std::uint32_t col = reg_col(ins.rs1);
        const auto wide = program.wide_register(ins.wide);
        const std::size_t off = static_cast<std::size_t>(col) * geometry.bytes_per_column;
        device_->write(bank_addr(ins.bank), col, wide.subspan(off, geometry.bytes_per_column),
                       when);
        ++metrics.writes;
        break;
      }
      case Opcode::kRef:
        device_->refresh(channel, pseudo_channel, when);
        ++metrics.refreshes;
        break;
      case Opcode::kHammer: {
        const hbm::Cycle on = std::max<hbm::Cycle>(static_cast<hbm::Cycle>(ins.imm2), timings.tRAS);
        device_->hammer_pair(bank_addr(ins.bank), reg_row(ins.rs1), reg_row(ins.rs2),
                             static_cast<std::uint64_t>(ins.imm), on,
                             when + decoded.cost[rec.pc]);
        metrics.acts += 2 * static_cast<std::uint64_t>(ins.imm);
        metrics.precharges += 2 * static_cast<std::uint64_t>(ins.imm);
        break;
      }
      case Opcode::kHammerSingle: {
        const hbm::Cycle on = std::max<hbm::Cycle>(static_cast<hbm::Cycle>(ins.imm2), timings.tRAS);
        device_->hammer_single(bank_addr(ins.bank), reg_row(ins.rs1),
                               static_cast<std::uint64_t>(ins.imm), on,
                               when + decoded.cost[rec.pc]);
        metrics.acts += static_cast<std::uint64_t>(ins.imm);
        metrics.precharges += static_cast<std::uint64_t>(ins.imm);
        break;
      }
      default:
        RH_EXPECTS(false && "non-device opcode in fast-forward record");
    }
  };

  try {
  while (pc < code.size()) {
    // Closed-form loop fast-forward: at an eligible backward BLT that is
    // about to be taken, execute the remaining iterations without stepping.
    if (decoded.loop_at[pc] >= 0) {
      const LoopInfo& loop = decoded.loops[static_cast<std::size_t>(decoded.loop_at[pc])];
      const std::int64_t r1 = regs[loop.induction_reg];
      const std::int64_t r2 = regs[loop.bound_reg];
      if (r1 < r2) {
        using Wide = __int128;
        const Wide need = (static_cast<Wide>(r2) - static_cast<Wide>(r1) +
                           loop.induction_step - 1) /
                          loop.induction_step;
        // Whole iterations that still fit in the instruction budget; when
        // the loop overruns it we replay what fits and let stepping raise
        // the budget error with the interpreter's exact context.
        const std::uint64_t head_room =
            instruction_budget > executed ? instruction_budget - executed : 0;
        const std::uint64_t fit = head_room / loop.body_len;
        const std::uint64_t n = static_cast<std::uint64_t>(
            std::min<Wide>(need, static_cast<Wide>(fit)));
        if (n > 0) {
          const hbm::Cycle t0 = t;
          const std::uint64_t executed0 = executed;
          for (std::uint64_t k = 0; k < n; ++k) {
            // Planted bug: drop the device commands of the final
            // fast-forwarded iteration while still advancing registers,
            // clock, and instruction count as if it ran.
            if (bug_ == common::PlantedBug::kOffByOneFastForward && k + 1 == n) break;
            const hbm::Cycle iter_start = t0 + k * loop.delta_t;
            for (const Record& rec : loop.records) {
              executed = executed0 + k * loop.body_len +
                         static_cast<std::uint64_t>(rec.pc - loop.target) + 2;
              issue_record(rec, iter_start + rec.offset);
            }
          }
          t = t0 + n * loop.delta_t;
          executed = executed0 + n * loop.body_len;
          for (const RegEffect& eff : loop.reg_effects) {
            if (eff.is_ldi) {
              regs[eff.rd] = eff.imm;
            } else {
              regs[eff.rd] += static_cast<std::int64_t>(n) * eff.imm;
            }
          }
          pc = loop.blt_pc;
          current = loop.blt_pc > loop.target ? &code[loop.blt_pc - 1] : &code[loop.blt_pc];
          continue;  // re-evaluate the BLT (not taken when n == need)
        }
      }
    }

    if (++executed > instruction_budget) {
      throw common::ProgramError("instruction budget exceeded (runaway loop?)");
    }
    const Instruction& ins = code[pc];
    current = &ins;
    hbm::Cycle cost = decoded.cost[pc];
    std::size_t next = pc + 1;

    switch (ins.op) {
      case Opcode::kNop:
        break;
      case Opcode::kLdi:
        regs[ins.rd] = ins.imm;
        break;
      case Opcode::kAddi:
        regs[ins.rd] = regs[ins.rs1] + ins.imm;
        break;
      case Opcode::kBlt:
        if (regs[ins.rs1] < regs[ins.rs2]) next = static_cast<std::size_t>(ins.imm);
        break;
      case Opcode::kJmp:
        next = static_cast<std::size_t>(ins.imm);
        break;
      case Opcode::kAct:
        device_->activate(bank_addr(ins.bank), reg_row(ins.rs1), t);
        ++metrics.acts;
        break;
      case Opcode::kPre:
        device_->precharge(bank_addr(ins.bank), t);
        ++metrics.precharges;
        break;
      case Opcode::kPreA:
        device_->precharge_all(channel, pseudo_channel, t);
        ++metrics.precharges;
        break;
      case Opcode::kWr: {
        const std::uint32_t col = reg_col(ins.rs1);
        const auto wide = program.wide_register(ins.wide);
        const std::size_t off = static_cast<std::size_t>(col) * geometry.bytes_per_column;
        device_->write(bank_addr(ins.bank), col, wide.subspan(off, geometry.bytes_per_column), t);
        ++metrics.writes;
        break;
      }
      case Opcode::kRd: {
        const std::uint32_t col = reg_col(ins.rs1);
        device_->read(bank_addr(ins.bank), col, t, burst);
        result.readback.insert(result.readback.end(), burst.begin(), burst.end());
        ++metrics.reads;
        break;
      }
      case Opcode::kRef:
        device_->refresh(channel, pseudo_channel, t);
        ++metrics.refreshes;
        break;
      case Opcode::kMrs:
        device_->mode_register_set(channel, ins.rd, static_cast<std::uint32_t>(ins.imm), t);
        ++metrics.mode_register_writes;
        break;
      case Opcode::kSleep:
        break;  // cost pre-decoded
      case Opcode::kHammer: {
        if (ins.imm > 0) {
          const hbm::Cycle on =
              std::max<hbm::Cycle>(static_cast<hbm::Cycle>(ins.imm2), timings.tRAS);
          device_->hammer_pair(bank_addr(ins.bank), reg_row(ins.rs1), reg_row(ins.rs2),
                               static_cast<std::uint64_t>(ins.imm), on, t + cost);
          metrics.acts += 2 * static_cast<std::uint64_t>(ins.imm);
          metrics.precharges += 2 * static_cast<std::uint64_t>(ins.imm);
        }
        break;
      }
      case Opcode::kHammerSingle: {
        if (ins.imm > 0) {
          const hbm::Cycle on =
              std::max<hbm::Cycle>(static_cast<hbm::Cycle>(ins.imm2), timings.tRAS);
          device_->hammer_single(bank_addr(ins.bank), reg_row(ins.rs1),
                                 static_cast<std::uint64_t>(ins.imm), on, t + cost);
          metrics.acts += static_cast<std::uint64_t>(ins.imm);
          metrics.precharges += static_cast<std::uint64_t>(ins.imm);
        }
        break;
      }
      case Opcode::kSrEnter:
        device_->self_refresh_enter(channel, pseudo_channel, t);
        break;
      case Opcode::kSrExit:
        device_->self_refresh_exit(channel, pseudo_channel, t);
        break;
      case Opcode::kEnd: {
        result.end_cycle = t + 1;
        result.instructions_executed = executed;
        metrics.sim_wall_ms = hbm::cycles_to_ms(result.end_cycle - result.start_cycle);
        metrics.host_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - host_start).count();
        if (metrics.sim_wall_ms > 0.0) {
          metrics.act_rate_hz =
              static_cast<double>(metrics.acts) / (metrics.sim_wall_ms * 1e-3);
        }
        if (metrics.host_seconds > 0.0) {
          metrics.instructions_per_second =
              static_cast<double>(executed) / metrics.host_seconds;
        }
        result.metrics = metrics;
        return result;
      }
    }
    t += cost;
    pc = next;
  }
  throw common::ProgramError("program ran off the end without END");
  } catch (common::Error& e) {
    std::string ctx = "after " + std::to_string(executed) + " instructions, cycle " +
                      std::to_string(t);
    if (current != nullptr) {
      ctx += ", pc " + std::to_string(pc) + ": " + disassemble(*current);
    }
    e.attach_context(ctx);
    throw;
  }
}

}  // namespace rh::bender
