// Bender programs and the ProgramBuilder.
//
// A Program is the unit the host ships to the FPGA: an instruction sequence
// plus the preloaded wide (pattern) registers. The ProgramBuilder provides
// raw per-instruction emission, labels for loops, and — crucially — timing-
// aware high-level emitters (init_row / read_row / hammer loops) that insert
// the SLEEP spacing the device's timing checker demands. The builder tracks
// virtual time exactly as the executor will account it, so the spacing is
// minimal, not conservative guesswork.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bender/instruction.hpp"
#include "hbm/geometry.hpp"
#include "hbm/timing.hpp"

namespace rh::bender {

class Program {
public:
  Program() = default;

  [[nodiscard]] const std::vector<Instruction>& instructions() const { return code_; }
  [[nodiscard]] std::span<const std::uint8_t> wide_register(std::uint32_t idx) const;

  /// Preloads a full row image into wide register `idx` (host-side DMA in
  /// real DRAM Bender). `data` must be row_bytes long.
  void set_wide_register(std::uint32_t idx, std::vector<std::uint8_t> data);

  /// Structural validation: register/bank/wide indices in range, jump
  /// targets inside the program, terminated by END, sane immediates.
  /// Throws ProgramError on violations.
  void validate(const hbm::Geometry& geometry) const;

  /// Appends a raw instruction (builder back-end).
  void push(const Instruction& instruction) { code_.push_back(instruction); }

private:
  std::vector<Instruction> code_;
  std::vector<std::vector<std::uint8_t>> wide_{kWideRegisters};
};

/// Reference to an instruction index, used as a branch target.
struct Label {
  std::size_t index = 0;
};

class ProgramBuilder {
public:
  ProgramBuilder(const hbm::Geometry& geometry, const hbm::TimingParams& timings);

  // --- raw emission (each returns *this for chaining) -------------------
  ProgramBuilder& nop();
  ProgramBuilder& ldi(std::uint8_t rd, std::int64_t imm);
  ProgramBuilder& addi(std::uint8_t rd, std::uint8_t rs1, std::int64_t imm);
  ProgramBuilder& blt(std::uint8_t rs1, std::uint8_t rs2, Label target);
  ProgramBuilder& jmp(Label target);
  ProgramBuilder& act(std::uint8_t bank, std::uint8_t row_reg);
  ProgramBuilder& pre(std::uint8_t bank);
  ProgramBuilder& prea();
  ProgramBuilder& wr(std::uint8_t bank, std::uint8_t col_reg, std::uint8_t wide_reg);
  ProgramBuilder& rd(std::uint8_t bank, std::uint8_t col_reg);
  ProgramBuilder& ref();
  ProgramBuilder& mrs(std::uint8_t mode_register, std::int64_t value);
  ProgramBuilder& sleep(std::int64_t cycles);
  ProgramBuilder& hammer(std::uint8_t bank, std::uint8_t row_a_reg, std::uint8_t row_b_reg,
                         std::int64_t count, std::int64_t on_time = 0);
  ProgramBuilder& hammer_single(std::uint8_t bank, std::uint8_t row_reg, std::int64_t count,
                                std::int64_t on_time = 0);
  /// Self-refresh entry / exit; stay inside by sleeping between the two.
  ProgramBuilder& sr_enter();
  ProgramBuilder& sr_exit();
  ProgramBuilder& end();

  /// Current instruction index, usable as a backward branch target.
  [[nodiscard]] Label here() const;

  // --- timing-aware high-level emitters ---------------------------------
  /// Opens `row`, writes the full image from `wide_reg` across all columns,
  /// and precharges — with minimal legal spacing. Uses scratch registers
  /// r30/r31.
  ProgramBuilder& init_row(std::uint8_t bank, std::uint32_t row, std::uint8_t wide_reg);
  /// Opens `row`, reads every column to the readback FIFO, precharges.
  /// Uses scratch registers r30/r31.
  ProgramBuilder& read_row(std::uint8_t bank, std::uint32_t row);
  /// Refreshes the row once (ACT + PRE with minimal spacing).
  ProgramBuilder& touch_row(std::uint8_t bank, std::uint32_t row);
  /// Emits an *unrolled-loop* double-sided hammer (raw ACT/PRE stream with a
  /// register loop, no macro-op) — used to validate macro-op equivalence and
  /// by tests. On-time per activation is max(tRAS, on_time).
  ProgramBuilder& hammer_loop_raw(std::uint8_t bank, std::uint32_t row_a, std::uint32_t row_b,
                                  std::uint32_t count, std::int64_t on_time = 0);

  /// Virtual cycles the program consumes so far (exact executor accounting).
  [[nodiscard]] hbm::Cycle virtual_cycles() const { return t_; }

  /// Per-hammer period for a given on-time: the executor charges this per
  /// ACT+PRE pair.
  [[nodiscard]] hbm::Cycle hammer_period(std::int64_t on_time) const;

  /// Finalizes: appends END if missing, validates, and returns the program.
  [[nodiscard]] Program take();

  /// Access to the program being built (e.g. to preload wide registers).
  [[nodiscard]] Program& program() { return program_; }

private:
  ProgramBuilder& emit(const Instruction& instruction, hbm::Cycle cycles);

  hbm::Geometry geometry_;
  hbm::TimingParams timings_;
  Program program_;
  hbm::Cycle t_ = 0;
  bool ended_ = false;
};

/// True when the host may transparently re-run the whole program as a
/// recovery action: no instruction writes DRAM contents or device mode
/// state (WR, HAMMER*, REF, MRS, self-refresh). Re-running a read-only
/// program re-reads the same cells — the way the real rig recovers a lost
/// readback — at the cost of extra activations, which the methodology
/// already tolerates as measurement noise. Anything stateful must instead
/// surface a TransportError and let the campaign re-measure the shard on a
/// fresh host.
[[nodiscard]] bool is_idempotent(const Program& program);

/// Human-readable one-line rendering of one instruction, e.g.
/// "ACT  b3, row=r31" — for debugging and program dumps.
[[nodiscard]] std::string disassemble(const Instruction& instruction);

/// Disassembles a whole program: one "<index>: <text>" line per instruction.
[[nodiscard]] std::vector<std::string> disassemble(const Program& program);

}  // namespace rh::bender
