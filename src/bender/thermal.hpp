// The temperature rig: heating pad + cooling fan + Arduino-style PID
// controller (paper §3, Fig. 2).
//
// The paper holds the HBM2 chip at 85 degC — the maximum operating
// temperature at the nominal refresh rate — using a closed-loop PID
// controller driving a heating pad and a cooling fan. We model a first-order
// thermal plant and the same control loop, so temperature-sensitive
// experiments (retention profiling, the A2 temperature ablation) drive the
// chip temperature the way the real rig does rather than poking a variable.
#pragma once

namespace rh::bender {

struct ThermalConfig {
  double ambient_c = 25.0;
  /// Heating rate at full pad power, degC/s.
  double heater_gain = 6.0;
  /// Passive cooling coefficient, 1/s (Newtonian cooling toward ambient).
  double passive_cooling = 0.02;
  /// Additional cooling coefficient at full fan duty, 1/s.
  double fan_cooling = 0.20;
  // PID gains (on the heater/fan duty, input = temperature error in degC).
  double kp = 0.30;
  double ki = 0.05;
  double kd = 0.10;
  /// Controller sample period, seconds (Arduino loop tick).
  double dt_s = 0.05;
};

class ThermalRig {
public:
  explicit ThermalRig(const ThermalConfig& config);

  void set_target(double celsius);
  [[nodiscard]] double target() const { return target_c_; }
  [[nodiscard]] double temperature() const { return temperature_c_; }
  [[nodiscard]] double heater_duty() const { return heater_duty_; }
  [[nodiscard]] double fan_duty() const { return fan_duty_; }

  /// One controller tick: PID update + plant integration over dt_s.
  void step();

  /// Instantaneous temperature excursion (injected fault or door-opened
  /// disturbance): the chip temperature jumps by `delta_c` and the settle
  /// window restarts, so settled() goes false until the PID re-converges.
  void perturb(double delta_c);

  /// Persistent ambient shift (injected drift): the plant's cooling target
  /// moves by `delta_c` and the controller must hold the setpoint against
  /// the new bias.
  void shift_ambient(double delta_c) { config_.ambient_c += delta_c; }

  /// True once the temperature has stayed within `tolerance_c` of the
  /// target for the last `required` consecutive steps.
  [[nodiscard]] bool settled(double tolerance_c = 0.5, int required = 20) const;

  [[nodiscard]] const ThermalConfig& config() const { return config_; }

private:
  ThermalConfig config_;
  double temperature_c_;
  double target_c_;
  double integral_ = 0.0;
  double previous_error_ = 0.0;
  double heater_duty_ = 0.0;
  double fan_duty_ = 0.0;
  int in_band_steps_ = 0;
};

}  // namespace rh::bender
