#include "bender/thermal.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rh::bender {

ThermalRig::ThermalRig(const ThermalConfig& config)
    : config_(config), temperature_c_(config.ambient_c), target_c_(config.ambient_c) {
  RH_EXPECTS(config_.dt_s > 0.0);
  RH_EXPECTS(config_.heater_gain > 0.0);
}

void ThermalRig::set_target(double celsius) {
  target_c_ = celsius;
  integral_ = 0.0;
  previous_error_ = target_c_ - temperature_c_;
  in_band_steps_ = 0;
}

void ThermalRig::perturb(double delta_c) {
  temperature_c_ += delta_c;
  in_band_steps_ = 0;
}

void ThermalRig::step() {
  const double error = target_c_ - temperature_c_;

  // PID with anti-windup clamping on the integral term.
  integral_ = std::clamp(integral_ + error * config_.dt_s, -50.0, 50.0);
  const double derivative = (error - previous_error_) / config_.dt_s;
  previous_error_ = error;
  const double u = config_.kp * error + config_.ki * integral_ + config_.kd * derivative;

  // Positive effort heats, negative effort spins the fan.
  heater_duty_ = std::clamp(u, 0.0, 1.0);
  fan_duty_ = std::clamp(-u, 0.0, 1.0);

  // First-order plant: heater input vs Newtonian cooling toward ambient.
  const double cooling = config_.passive_cooling + fan_duty_ * config_.fan_cooling;
  const double d_temp = heater_duty_ * config_.heater_gain -
                        (temperature_c_ - config_.ambient_c) * cooling;
  temperature_c_ += d_temp * config_.dt_s;

  if (std::abs(target_c_ - temperature_c_) <= 0.5) {
    ++in_band_steps_;
  } else {
    in_band_steps_ = 0;
  }
}

bool ThermalRig::settled(double tolerance_c, int required) const {
  return std::abs(target_c_ - temperature_c_) <= tolerance_c && in_band_steps_ >= required;
}

}  // namespace rh::bender
