// The fast program engine: pre-decoded traces + closed-form loop
// fast-forwarding.
//
// TraceEngine runs the same Bender programs as Executor (the reference
// interpreter) and must be bit-for-bit indistinguishable from it: same
// ExecutionResult (readback bytes, clocks, instruction counts, metrics),
// same device side effects in the same order, and same error strings with
// the same attached context when a program faults. tests/engine_diff_test.cpp
// and the verify::Property campaign identities enforce the contract.
//
// Where the speed comes from:
//   - Pre-decode: one pass over the program computes every instruction's
//     static cycle cost (all Bender costs are static per instruction) and
//     flattens each fixed-cadence loop body into a list of timed device
//     command records (offset-from-iteration-start, pc).
//   - Loop fast-forward: a backward BLT whose body passes the static
//     analysis below executes its remaining N iterations in closed form —
//     registers advance by N times their per-iteration delta, the clock by
//     N times the body's static duration, and only the *device* commands
//     are replayed (at their exact per-iteration issue cycles), skipping
//     the scalar/padding instructions entirely.
//   - Idle skipping: like the interpreter, time between commands is a
//     single addition (SLEEP is O(1)), never a tick loop.
//
// Fast-forward soundness: a body is eligible only when it is branch-free,
// every register is written at most once (LDI, or ADDI with rd == rs1),
// no device operand register is written inside the body, and the closing
// BLT compares a single positive-step ADDI induction register against an
// invariant bound. Under those rules every future iteration is identical
// except for the induction value, so the iteration count
// N = ceil((bound - induction) / step) is exact, and replaying the device
// records at base + k*delta_t reproduces the stepped execution verbatim —
// including mid-loop TimingError/ProgramError context and the
// instruction-budget throw, which fall back to stepping so the error text
// matches the interpreter byte for byte.
#pragma once

#include <cstdint>
#include <vector>

#include "bender/executor.hpp"
#include "bender/program.hpp"
#include "common/engine.hpp"
#include "hbm/device.hpp"

namespace rh::bender {

class TraceEngine {
public:
  explicit TraceEngine(hbm::Device& device,
                       common::PlantedBug bug = common::PlantedBug::kNone)
      : device_(&device), bug_(bug) {}

  /// Planted bug for differential-rig sensitivity tests (see
  /// common/engine.hpp). Only kOffByOneFastForward lives here; the other
  /// bugs are planted in the device layers via Device::set_engine.
  void set_planted_bug(common::PlantedBug bug) { bug_ = bug; }

  /// Drop-in replacement for Executor::run — identical contract, identical
  /// observable behaviour, faster.
  ExecutionResult run(const Program& program, std::uint32_t channel,
                      std::uint32_t pseudo_channel, hbm::Cycle start,
                      std::uint64_t instruction_budget = 100'000'000);

private:
  /// One device command inside a fast-forwardable loop body.
  struct Record {
    std::size_t pc = 0;      ///< instruction index in the program
    hbm::Cycle offset = 0;   ///< issue cycle relative to iteration start
  };

  /// Closed-form register update applied per fast-forwarded iteration.
  struct RegEffect {
    std::uint8_t rd = 0;
    bool is_ldi = false;     ///< LDI pins to imm; ADDI accumulates n * imm
    std::int64_t imm = 0;
  };

  /// Static analysis of one backward BLT loop (stored only when eligible).
  struct LoopInfo {
    std::size_t target = 0;         ///< body start (branch target)
    std::size_t blt_pc = 0;         ///< the closing BLT
    std::uint64_t body_len = 0;     ///< instructions per iteration (incl. BLT)
    hbm::Cycle delta_t = 0;         ///< cycles per iteration (incl. BLT)
    std::uint8_t induction_reg = 0;
    std::int64_t induction_step = 0;  ///< > 0
    std::uint8_t bound_reg = 0;       ///< invariant inside the body
    std::vector<Record> records;
    std::vector<RegEffect> reg_effects;
  };

  struct Decoded {
    std::vector<hbm::Cycle> cost;      ///< static cost per instruction
    std::vector<std::int32_t> loop_at; ///< pc -> index into loops, or -1
    std::vector<LoopInfo> loops;
  };

  [[nodiscard]] Decoded decode(const Program& program,
                               const hbm::TimingParams& timings) const;

  hbm::Device* device_;
  common::PlantedBug bug_;
};

}  // namespace rh::bender
