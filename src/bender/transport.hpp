// Host <-> FPGA transport model (the PCIe link of Fig. 2).
//
// DRAM Bender ships programs and pattern registers to the FPGA over PCIe and
// drains the readback FIFO the same way. The link does not consume *DRAM*
// time (the FPGA runs programs autonomously), but it dominates host-side
// wall clock for short programs — a real effect when iterating millions of
// small probes, and the reason the infrastructure batches work into
// programs instead of issuing single commands from the host.
//
// The model: fixed per-transfer latency plus bytes/bandwidth, with counters
// for profiling the host-side cost of an experiment campaign.
//
// Fallibility: with a resilience::FaultInjector attached, the link becomes
// the fault plane's transport layer. Uploads can time out (watchdog cost) or
// drop (data sent, ack lost); FIFO drains can arrive bit-corrupted or as a
// strict prefix (short read). Corruption and short reads are *silent at this
// layer* — exactly like real DMA — and are detected above by the host's
// CRC-framed readback check. Accounting invariant (pinned by
// transport_test): every attempt, failed or not, charges its wall-clock
// cost to busy_ms exactly once; `uploads`/`upload_bytes` count only
// delivered transfers, `failed_uploads` counts the rest; `downloads` counts
// every drain performed (the DMA happened even if the payload is garbage).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "resilience/fault.hpp"

namespace rh::bender {

struct PcieConfig {
  /// Effective host->FPGA / FPGA->host throughput (GiB/s). Gen3 x8 class.
  double bandwidth_gib_s = 6.0;
  /// Per-transfer setup latency (microseconds): doorbell + DMA descriptor.
  double latency_us = 25.0;
  /// Watchdog budget a timed-out transfer burns before the host gives up
  /// on the attempt (milliseconds of host wall clock).
  double timeout_ms = 250.0;
};

/// Transport-level verdict of one transfer attempt. Corrupted / short
/// downloads report kOk here: the wire cannot tell; the CRC frame can.
enum class TransferStatus : std::uint8_t {
  kOk = 0,
  kTimeout,  ///< DMA never completed; the watchdog expired
  kDropped,  ///< data transmitted but the completion ack was lost
};

struct TransferOutcome {
  TransferStatus status = TransferStatus::kOk;
  /// Host wall-clock this attempt cost (already added to busy_ms).
  double wall_ms = 0.0;
  /// Bytes that actually arrived (downloads; 0 for failed uploads).
  std::size_t bytes = 0;

  [[nodiscard]] bool ok() const { return status == TransferStatus::kOk; }
};

class PcieLink {
public:
  explicit PcieLink(const PcieConfig& config = PcieConfig{}) : config_(config) {}

  /// Attaches the fault plane (nullptr detaches; transfers then always
  /// succeed, which is the zero-overhead default path).
  void set_fault_injector(resilience::FaultInjector* injector) { injector_ = injector; }
  [[nodiscard]] resilience::FaultInjector* fault_injector() const { return injector_; }

  /// Wall-clock milliseconds one transfer of `bytes` takes.
  [[nodiscard]] double transfer_ms(std::size_t bytes) const {
    const double data_ms =
        static_cast<double>(bytes) / (config_.bandwidth_gib_s * 1024.0 * 1024.0 * 1024.0) * 1e3;
    return config_.latency_us * 1e-3 + data_ms;
  }

  /// One host->FPGA transfer attempt (program upload, wide registers).
  /// Consults the fault plane; a timeout burns the watchdog budget, a drop
  /// burns the full transfer time. Either way the cost lands on busy_ms
  /// exactly once and the attempt is tallied as failed.
  TransferOutcome upload(std::size_t bytes) {
    if (injector_ != nullptr && injector_->should_fire(resilience::FaultKind::kUploadTimeout)) {
      ++failed_uploads_;
      busy_ms_ += config_.timeout_ms;
      return {TransferStatus::kTimeout, config_.timeout_ms, 0};
    }
    if (injector_ != nullptr && injector_->should_fire(resilience::FaultKind::kUploadDrop)) {
      const double ms = transfer_ms(bytes);
      ++failed_uploads_;
      busy_ms_ += ms;
      return {TransferStatus::kDropped, ms, 0};
    }
    return {TransferStatus::kOk, record_upload(bytes), bytes};
  }

  /// One FPGA->host readback drain of `frame` into `out`. The fault plane
  /// may truncate the delivery (short read) or flip payload bits
  /// (corruption); both are silent here and surface as a CRC/length
  /// mismatch in the host's frame check. Each drain is one download whose
  /// cost is charged once.
  TransferOutcome download(std::span<const std::uint8_t> frame, std::vector<std::uint8_t>& out) {
    out.assign(frame.begin(), frame.end());
    bool faulted = false;
    if (injector_ != nullptr && !out.empty() &&
        injector_->should_fire(resilience::FaultKind::kReadbackShortRead)) {
      // The DMA ended early: deliver a strict prefix.
      out.resize(injector_->shape() % out.size());
      faulted = true;
    } else if (injector_ != nullptr && !out.empty() &&
               injector_->should_fire(resilience::FaultKind::kReadbackCorrupt)) {
      const std::uint32_t flips = std::max(1u, injector_->plan().corrupt_bits);
      for (std::uint32_t i = 0; i < flips; ++i) {
        const std::uint64_t bit = injector_->shape() % (out.size() * 8);
        out[bit / 8] = static_cast<std::uint8_t>(out[bit / 8] ^ (1u << (bit % 8)));
      }
      faulted = true;
    }
    if (faulted) ++faulted_downloads_;
    return {TransferStatus::kOk, record_download(out.size()), out.size()};
  }

  /// Records an infallible host->FPGA transfer (the no-injector fast path).
  double record_upload(std::size_t bytes) {
    ++uploads_;
    upload_bytes_ += bytes;
    const double ms = transfer_ms(bytes);
    busy_ms_ += ms;
    return ms;
  }

  /// Records an infallible FPGA->host transfer (readback FIFO drain).
  double record_download(std::size_t bytes) {
    ++downloads_;
    download_bytes_ += bytes;
    const double ms = transfer_ms(bytes);
    busy_ms_ += ms;
    return ms;
  }

  [[nodiscard]] std::uint64_t uploads() const { return uploads_; }
  [[nodiscard]] std::uint64_t downloads() const { return downloads_; }
  [[nodiscard]] std::uint64_t upload_bytes() const { return upload_bytes_; }
  [[nodiscard]] std::uint64_t download_bytes() const { return download_bytes_; }
  /// Upload attempts that timed out or dropped (injected faults).
  [[nodiscard]] std::uint64_t failed_uploads() const { return failed_uploads_; }
  /// Drains delivered with injected corruption or truncation.
  [[nodiscard]] std::uint64_t faulted_downloads() const { return faulted_downloads_; }
  /// Total link-busy wall time, milliseconds (includes failed attempts).
  [[nodiscard]] double busy_ms() const { return busy_ms_; }

  [[nodiscard]] const PcieConfig& config() const { return config_; }

private:
  PcieConfig config_;
  resilience::FaultInjector* injector_ = nullptr;
  std::uint64_t uploads_ = 0;
  std::uint64_t downloads_ = 0;
  std::uint64_t upload_bytes_ = 0;
  std::uint64_t download_bytes_ = 0;
  std::uint64_t failed_uploads_ = 0;
  std::uint64_t faulted_downloads_ = 0;
  double busy_ms_ = 0.0;
};

}  // namespace rh::bender
