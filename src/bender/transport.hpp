// Host <-> FPGA transport model (the PCIe link of Fig. 2).
//
// DRAM Bender ships programs and pattern registers to the FPGA over PCIe and
// drains the readback FIFO the same way. The link does not consume *DRAM*
// time (the FPGA runs programs autonomously), but it dominates host-side
// wall clock for short programs — a real effect when iterating millions of
// small probes, and the reason the infrastructure batches work into
// programs instead of issuing single commands from the host.
//
// The model: fixed per-transfer latency plus bytes/bandwidth, with counters
// for profiling the host-side cost of an experiment campaign.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rh::bender {

struct PcieConfig {
  /// Effective host->FPGA / FPGA->host throughput (GiB/s). Gen3 x8 class.
  double bandwidth_gib_s = 6.0;
  /// Per-transfer setup latency (microseconds): doorbell + DMA descriptor.
  double latency_us = 25.0;
};

class PcieLink {
public:
  explicit PcieLink(const PcieConfig& config = PcieConfig{}) : config_(config) {}

  /// Wall-clock milliseconds one transfer of `bytes` takes.
  [[nodiscard]] double transfer_ms(std::size_t bytes) const {
    const double data_ms =
        static_cast<double>(bytes) / (config_.bandwidth_gib_s * 1024.0 * 1024.0 * 1024.0) * 1e3;
    return config_.latency_us * 1e-3 + data_ms;
  }

  /// Records a host->FPGA transfer (program upload, wide registers).
  double record_upload(std::size_t bytes) {
    ++uploads_;
    upload_bytes_ += bytes;
    const double ms = transfer_ms(bytes);
    busy_ms_ += ms;
    return ms;
  }

  /// Records an FPGA->host transfer (readback FIFO drain).
  double record_download(std::size_t bytes) {
    ++downloads_;
    download_bytes_ += bytes;
    const double ms = transfer_ms(bytes);
    busy_ms_ += ms;
    return ms;
  }

  [[nodiscard]] std::uint64_t uploads() const { return uploads_; }
  [[nodiscard]] std::uint64_t downloads() const { return downloads_; }
  [[nodiscard]] std::uint64_t upload_bytes() const { return upload_bytes_; }
  [[nodiscard]] std::uint64_t download_bytes() const { return download_bytes_; }
  /// Total link-busy wall time, milliseconds.
  [[nodiscard]] double busy_ms() const { return busy_ms_; }

  [[nodiscard]] const PcieConfig& config() const { return config_; }

private:
  PcieConfig config_;
  std::uint64_t uploads_ = 0;
  std::uint64_t downloads_ = 0;
  std::uint64_t upload_bytes_ = 0;
  std::uint64_t download_bytes_ = 0;
  double busy_ms_ = 0.0;
};

}  // namespace rh::bender
