#include "bender/host.hpp"

#include "common/error.hpp"

namespace rh::bender {

BenderHost::BenderHost(hbm::DeviceConfig device_config, ThermalConfig thermal_config)
    : device_(std::make_unique<hbm::Device>(std::move(device_config))),
      executor_(*device_),
      thermal_(thermal_config) {
  // The rig starts at ambient; the device config's initial temperature is
  // honoured until the first set_chip_temperature call.
  thermal_.set_target(device_->temperature());
}

ExecutionResult BenderHost::run(const Program& program, std::uint32_t channel,
                                std::uint32_t pseudo_channel) {
  // Ship the program (instruction stream + preloaded wide registers) over
  // the link, run it, then drain the readback FIFO.
  std::size_t upload = program.instructions().size() * sizeof(Instruction);
  for (std::uint32_t w = 0; w < kWideRegisters; ++w) {
    upload += program.wide_register(w).size();
  }
  link_.record_upload(upload);
  ExecutionResult result = executor_.run(program, channel, pseudo_channel, now_);
  now_ = result.end_cycle;
  if (!result.readback.empty()) link_.record_download(result.readback.size());
  return result;
}

void BenderHost::set_chip_temperature(double celsius, double timeout_s) {
  thermal_.set_target(celsius);
  const double dt = thermal_.config().dt_s;
  const auto max_steps = static_cast<long>(timeout_s / dt);
  for (long step = 0; step < max_steps; ++step) {
    thermal_.step();
    idle_cycles(hbm::ms_to_cycles(dt * 1e3));
    device_->set_temperature(thermal_.temperature());
    if (thermal_.settled()) return;
  }
  throw common::ConfigError("thermal rig failed to settle on target temperature");
}

}  // namespace rh::bender
