#include "bender/host.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "resilience/crc32.hpp"
#include "telemetry/span.hpp"
#include "telemetry/stream.hpp"
#include "telemetry/telemetry.hpp"

namespace rh::bender {

namespace {

using resilience::FaultKind;

std::string fmt_celsius(double c) {
  std::ostringstream os;
  os.precision(2);
  os << std::fixed << c;
  return os.str();
}

/// Readback frame layout: [payload_len u32 LE][crc32 u32 LE][payload].
constexpr std::size_t kFrameHeaderBytes = 8;

void store_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t load_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) | (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) | (static_cast<std::uint32_t>(in[3]) << 24);
}

std::vector<std::uint8_t> make_frame(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame(kFrameHeaderBytes + payload.size());
  store_u32(frame.data(), static_cast<std::uint32_t>(payload.size()));
  store_u32(frame.data() + 4, resilience::crc32(payload));
  std::copy(payload.begin(), payload.end(), frame.begin() + kFrameHeaderBytes);
  return frame;
}

/// True when the drained frame is intact: full length arrived, the header's
/// length matches, and the payload CRC verifies.
bool frame_intact(const std::vector<std::uint8_t>& wire, std::size_t expected_bytes) {
  if (wire.size() != expected_bytes || wire.size() < kFrameHeaderBytes) return false;
  const std::uint32_t len = load_u32(wire.data());
  if (len != wire.size() - kFrameHeaderBytes) return false;
  const std::uint32_t crc = load_u32(wire.data() + 4);
  const std::span<const std::uint8_t> payload(wire.data() + kFrameHeaderBytes, len);
  return resilience::crc32(payload) == crc;
}

std::size_t program_upload_bytes(const Program& program) {
  std::size_t upload = program.instructions().size() * sizeof(Instruction);
  for (std::uint32_t w = 0; w < kWideRegisters; ++w) {
    upload += program.wide_register(w).size();
  }
  return upload;
}

}  // namespace

BenderHost::BenderHost(hbm::DeviceConfig device_config, ThermalConfig thermal_config)
    : device_(std::make_unique<hbm::Device>(std::move(device_config))),
      executor_(*device_),
      trace_engine_(*device_),
      thermal_(thermal_config) {
  // The rig starts at ambient; the device config's initial temperature is
  // honoured until the first set_chip_temperature call.
  thermal_.set_target(device_->temperature());
  // The fast engine is the production default; set_engine(kInterp) restores
  // the reference interpreter (the differential rig runs both).
  device_->set_engine(engine_);
}

void BenderHost::set_engine(common::EngineKind kind, common::PlantedBug bug) {
  engine_ = kind;
  if (kind != common::EngineKind::kFast) bug = common::PlantedBug::kNone;
  trace_engine_.set_planted_bug(bug);
  device_->set_engine(kind, bug);
}

ExecutionResult BenderHost::execute_program(const Program& program, std::uint32_t channel,
                                            std::uint32_t pseudo_channel) {
  if (engine_ == common::EngineKind::kFast) {
    return trace_engine_.run(program, channel, pseudo_channel, now_);
  }
  return executor_.run(program, channel, pseudo_channel, now_);
}

void BenderHost::set_fault_injector(resilience::FaultInjector* injector) {
  injector_ = injector;
  link_.set_fault_injector(injector);
}

void BenderHost::fault_detected(FaultKind kind, std::uint32_t channel,
                                std::uint32_t pseudo_channel) {
  ++stats_.detected;
  RH_TELEM(telemetry_, metrics().counter("resilience.detected").add());
  RH_TELEM(telemetry_, on_command(telemetry::TraceCommand::kFault, now_, channel,
                                  pseudo_channel, 0, 0, static_cast<std::uint32_t>(kind)));
  if (span_ctx_ != nullptr) {
    span_ctx_->mark(telemetry::SpanKind::kFault, now_, static_cast<std::uint32_t>(kind));
  }
}

void BenderHost::fault_recovered(FaultKind kind, std::uint32_t channel,
                                 std::uint32_t pseudo_channel, const std::string& detail) {
  ++stats_.recovered;
  // Calls-only: the wall time of the retry is already charged to the phase
  // (upload/drain/thermal) whose timer was open when the fault fired.
  profile_.record(profiling::Phase::kRecover, 0, 0.0);
  injector_->note_recovered(kind, detail);
  RH_TELEM(telemetry_, metrics().counter("resilience.recovered").add());
  RH_TELEM(telemetry_, on_command(telemetry::TraceCommand::kRecovery, now_, channel,
                                  pseudo_channel, 0, 0, static_cast<std::uint32_t>(kind)));
  if (span_ctx_ != nullptr) {
    span_ctx_->mark(telemetry::SpanKind::kRecovery, now_, static_cast<std::uint32_t>(kind));
  }
}

void BenderHost::fault_aborted(FaultKind kind, std::uint32_t channel,
                               std::uint32_t pseudo_channel, const std::string& detail) {
  ++stats_.aborted;
  injector_->note_aborted(kind, detail);
  RH_TELEM(telemetry_, metrics().counter("resilience.aborted").add());
  RH_TELEM(telemetry_, on_command(telemetry::TraceCommand::kRecovery, now_, channel,
                                  pseudo_channel, 0, 0, static_cast<std::uint32_t>(kind)));
  if (span_ctx_ != nullptr) {
    span_ctx_->mark(telemetry::SpanKind::kRecovery, now_, static_cast<std::uint32_t>(kind));
  }
}

void BenderHost::charge_backoff(std::uint64_t op, unsigned attempt) {
  ++stats_.retried;
  stats_.retry_wait_ms += resilience::backoff_ms(policy_, op, attempt);
  RH_TELEM(telemetry_, metrics().counter("resilience.retried").add());
}

void BenderHost::upload_with_retry(std::size_t bytes, std::uint64_t op, std::uint32_t channel,
                                   std::uint32_t pseudo_channel) {
  const unsigned budget = std::max(1u, policy_.max_attempts);
  for (unsigned attempt = 1; attempt <= budget; ++attempt) {
    const TransferOutcome outcome = link_.upload(bytes);
    if (outcome.ok()) return;
    const FaultKind kind = outcome.status == TransferStatus::kTimeout
                               ? FaultKind::kUploadTimeout
                               : FaultKind::kUploadDrop;
    ++stats_.upload_failures;
    fault_detected(kind, channel, pseudo_channel);
    if (attempt >= budget) {
      fault_aborted(kind, channel, pseudo_channel,
                    "upload budget exhausted after " + std::to_string(budget) + " attempts");
      throw common::TransportError("PCIe upload of " + std::to_string(bytes) +
                                   " bytes failed after " + std::to_string(budget) +
                                   " attempts (last: " +
                                   std::string(to_string(kind)) + ")");
    }
    charge_backoff(op, attempt);
    fault_recovered(kind, channel, pseudo_channel,
                    "re-upload, attempt " + std::to_string(attempt + 1) + "/" +
                        std::to_string(budget));
  }
}

bool BenderHost::download_with_verify(const std::vector<std::uint8_t>& readback,
                                      std::uint64_t op, std::uint32_t channel,
                                      std::uint32_t pseudo_channel) {
  const std::vector<std::uint8_t> frame = make_frame(readback);
  const unsigned budget = std::max(1u, policy_.max_attempts);
  std::vector<std::uint8_t> wire;
  for (unsigned attempt = 1; attempt <= budget; ++attempt) {
    (void)link_.download(frame, wire);
    if (frame_intact(wire, frame.size())) return true;
    // Either the CRC caught flipped bits or the drain came up short. Both
    // are detected — never silently absorbed — and the FIFO still holds
    // the data, so a re-drain is always safe.
    const bool short_read = wire.size() != frame.size();
    if (short_read) {
      ++stats_.short_reads;
    } else {
      ++stats_.crc_failures;
    }
    const FaultKind kind =
        short_read ? FaultKind::kReadbackShortRead : FaultKind::kReadbackCorrupt;
    fault_detected(kind, channel, pseudo_channel);
    if (attempt >= budget) {
      fault_aborted(kind, channel, pseudo_channel,
                    "drain budget exhausted after " + std::to_string(budget) + " attempts");
      return false;
    }
    charge_backoff(op, attempt);
    fault_recovered(kind, channel, pseudo_channel,
                    "re-drain, attempt " + std::to_string(attempt + 1) + "/" +
                        std::to_string(budget));
  }
  return false;
}

ExecutionResult BenderHost::run(const Program& program, std::uint32_t channel,
                                std::uint32_t pseudo_channel) {
  const std::size_t upload = program_upload_bytes(program);

  if (injector_ == nullptr) {
    // Zero-overhead fast path: the exact pre-resilience behaviour (one
    // infallible upload, run, one infallible drain — no CRC framing cost).
    // Phase accounting rides along: the executor already timed itself, so
    // the execute phase reuses RunMetrics instead of a second clock pair.
    {
      const profiling::PhaseTimer timer(profile_, profiling::Phase::kUpload);
      const telemetry::SpanScope span(span_ctx_, telemetry::SpanKind::kUpload, &now_);
      link_.record_upload(upload);
    }
    std::uint64_t exec_span = 0;
    if (span_ctx_ != nullptr) exec_span = span_ctx_->open(telemetry::SpanKind::kExecute, now_);
    ExecutionResult result = execute_program(program, channel, pseudo_channel);
    now_ = result.end_cycle;
    if (span_ctx_ != nullptr) span_ctx_->close(exec_span, now_);
    profile_.record(profiling::Phase::kExecute, result.cycles(),
                    result.metrics.host_seconds * 1e3);
    if (!result.readback.empty()) {
      const profiling::PhaseTimer timer(profile_, profiling::Phase::kDrain);
      const telemetry::SpanScope span(span_ctx_, telemetry::SpanKind::kDrain, &now_);
      link_.record_download(result.readback.size());
    }
    if (sampler_ != nullptr) sampler_->sample_if_due(now_);
    return result;
  }

  enforce_temperature_guard(channel, pseudo_channel);
  const std::uint64_t op = op_serial_++;
  const unsigned budget = std::max(1u, policy_.max_attempts);

  for (unsigned run_attempt = 1;; ++run_attempt) {
    {
      const profiling::PhaseTimer timer(profile_, profiling::Phase::kUpload);
      const telemetry::SpanScope span(span_ctx_, telemetry::SpanKind::kUpload, &now_);
      upload_with_retry(upload, op, channel, pseudo_channel);
    }

    if (injector_->should_fire(FaultKind::kExecutorStall)) {
      // The doorbell was lost: the program never started, so no DRAM
      // command was issued and a re-ship is unconditionally safe. The
      // watchdog wait is host wall time only.
      ++stats_.stalls;
      fault_detected(FaultKind::kExecutorStall, channel, pseudo_channel);
      stats_.retry_wait_ms += link_.config().timeout_ms;
      if (run_attempt >= budget) {
        fault_aborted(FaultKind::kExecutorStall, channel, pseudo_channel,
                      "watchdog budget exhausted after " + std::to_string(budget) +
                          " attempts");
        throw common::TransportError("executor stalled (doorbell lost) " +
                                     std::to_string(budget) + " times; giving up");
      }
      charge_backoff(op, run_attempt);
      fault_recovered(FaultKind::kExecutorStall, channel, pseudo_channel,
                      "doorbell re-armed, attempt " + std::to_string(run_attempt + 1) + "/" +
                          std::to_string(budget));
      continue;
    }

    std::uint64_t exec_span = 0;
    if (span_ctx_ != nullptr) exec_span = span_ctx_->open(telemetry::SpanKind::kExecute, now_);
    ExecutionResult result = execute_program(program, channel, pseudo_channel);
    now_ = result.end_cycle;
    if (span_ctx_ != nullptr) span_ctx_->close(exec_span, now_);
    profile_.record(profiling::Phase::kExecute, result.cycles(),
                    result.metrics.host_seconds * 1e3);
    if (result.readback.empty()) {
      if (sampler_ != nullptr) sampler_->sample_if_due(now_);
      return result;
    }

    // The executor's FIFO copy is authoritative; what faults is the wire
    // copy. A verified drain therefore returns the pristine readback.
    bool drained = false;
    {
      const profiling::PhaseTimer timer(profile_, profiling::Phase::kDrain);
      const telemetry::SpanScope span(span_ctx_, telemetry::SpanKind::kDrain, &now_);
      drained = download_with_verify(result.readback, op, channel, pseudo_channel);
    }
    if (drained) {
      if (sampler_ != nullptr) sampler_->sample_if_due(now_);
      return result;
    }

    // Drain budget exhausted. The last resort is a full re-run, and only
    // for programs that cannot change stored DRAM or mode state —
    // re-running a hammer probe would re-hammer the victim and corrupt the
    // measurement, so stateful programs surface a TransportError and the
    // campaign re-measures the shard on a fresh host instead.
    if (!is_idempotent(program) || run_attempt >= budget) {
      throw common::TransportError(
          "readback unrecoverable after " + std::to_string(budget) + " drains" +
          (is_idempotent(program) ? " and " + std::to_string(run_attempt) + " re-runs"
                                  : "; program is not idempotent, re-run refused"));
    }
    ++stats_.reruns;
    RH_TELEM(telemetry_, metrics().counter("resilience.reruns").add());
  }
}

bool BenderHost::settle_loop(double timeout_s) {
  const double dt = thermal_.config().dt_s;
  const auto max_steps = static_cast<long>(timeout_s / dt);
  for (long step = 0; step < max_steps; ++step) {
    thermal_.step();
    idle_cycles(hbm::ms_to_cycles(dt * 1e3));
    device_->set_temperature(thermal_.temperature());
    if (thermal_.settled()) return true;
  }
  return false;
}

void BenderHost::enforce_temperature_guard(std::uint32_t channel,
                                           std::uint32_t pseudo_channel) {
  // Any re-settle consumes simulated time, so the thermal phase samples the
  // device clock alongside the wall clock.
  const profiling::PhaseTimer timer(profile_, profiling::Phase::kThermal, &now_);
  const telemetry::SpanScope span(span_ctx_, telemetry::SpanKind::kThermal, &now_);
  // One thermal-fault opportunity per program launch.
  bool excursion = false;
  if (injector_->should_fire(FaultKind::kThermalExcursion)) {
    excursion = true;
    const double sign = (injector_->shape() & 1u) != 0 ? 1.0 : -1.0;
    thermal_.perturb(sign * injector_->plan().excursion_c);
    device_->set_temperature(thermal_.temperature());
    fault_detected(FaultKind::kThermalExcursion, channel, pseudo_channel);
  }
  if (injector_->should_fire(FaultKind::kThermalDrift)) {
    const double sign = (injector_->shape() & 1u) != 0 ? 1.0 : -1.0;
    thermal_.shift_ambient(sign * injector_->plan().drift_c);
    fault_detected(FaultKind::kThermalDrift, channel, pseudo_channel);
    // Drift does not move the chip out of band by itself; the PID simply
    // holds the setpoint against the shifted ambient from now on.
    fault_recovered(FaultKind::kThermalDrift, channel, pseudo_channel,
                    "PID holds setpoint against shifted ambient");
  }

  const double target = thermal_.target();
  if (std::abs(device_->temperature() - target) <= guard_band_c_) {
    if (excursion) {
      fault_recovered(FaultKind::kThermalExcursion, channel, pseudo_channel,
                      "excursion stayed within the guard band");
    }
    return;
  }

  // The chip left the control band: pause the experiment (callback), then
  // re-settle before issuing any further commands. Re-settling consumes
  // simulated time — retention keeps accruing — exactly as it would on the
  // real rig; that is the physical cost of a thermal upset.
  ++stats_.guard_pauses;
  RH_TELEM(telemetry_, metrics().counter("resilience.guard_pauses").add());
  if (guard_) guard_(target, device_->temperature());
  if (!settle_loop(600.0)) {
    if (excursion) {
      fault_aborted(FaultKind::kThermalExcursion, channel, pseudo_channel,
                    "rig failed to re-settle");
    }
    throw common::ThermalError("temperature guard could not re-settle the rig: target " +
                               fmt_celsius(target) + " degC, actual " +
                               fmt_celsius(device_->temperature()) + " degC");
  }
  if (excursion) {
    fault_recovered(FaultKind::kThermalExcursion, channel, pseudo_channel,
                    "re-settled within guard band");
  }
}

void BenderHost::set_chip_temperature(double celsius, double timeout_s) {
  const profiling::PhaseTimer timer(profile_, profiling::Phase::kThermal, &now_);
  thermal_.set_target(celsius);
  // One thermal-fault opportunity per settle request: an excursion fires
  // after the first convergence (forcing a re-settle inside the same
  // budget); drift shifts the plant's ambient before the climb.
  bool excursion_pending =
      injector_ != nullptr && injector_->should_fire(FaultKind::kThermalExcursion);
  bool excursion_fired = false;
  if (injector_ != nullptr && injector_->should_fire(FaultKind::kThermalDrift)) {
    const double sign = (injector_->shape() & 1u) != 0 ? 1.0 : -1.0;
    thermal_.shift_ambient(sign * injector_->plan().drift_c);
    fault_detected(FaultKind::kThermalDrift, 0, 0);
    fault_recovered(FaultKind::kThermalDrift, 0, 0,
                    "PID settles against shifted ambient");
  }

  const double dt = thermal_.config().dt_s;
  const auto max_steps = static_cast<long>(timeout_s / dt);
  for (long step = 0; step < max_steps; ++step) {
    thermal_.step();
    idle_cycles(hbm::ms_to_cycles(dt * 1e3));
    device_->set_temperature(thermal_.temperature());
    if (thermal_.settled()) {
      if (excursion_pending) {
        excursion_pending = false;
        excursion_fired = true;
        const double sign = (injector_->shape() & 1u) != 0 ? 1.0 : -1.0;
        thermal_.perturb(sign * injector_->plan().excursion_c);
        device_->set_temperature(thermal_.temperature());
        fault_detected(FaultKind::kThermalExcursion, 0, 0);
        continue;  // re-settle within the remaining budget
      }
      if (excursion_fired) {
        fault_recovered(FaultKind::kThermalExcursion, 0, 0,
                        "re-settled after mid-settle excursion");
      }
      return;
    }
  }
  if (excursion_pending || excursion_fired) {
    // The injection already sits pending in the log (should_fire records
    // at draw time); close it out before surfacing the failure.
    fault_aborted(FaultKind::kThermalExcursion, 0, 0, "settle budget exhausted");
  }
  throw common::ThermalError("thermal rig failed to settle: target " + fmt_celsius(celsius) +
                             " degC, actual " + fmt_celsius(thermal_.temperature()) +
                             " degC after " + fmt_celsius(timeout_s) + " s");
}

}  // namespace rh::bender
