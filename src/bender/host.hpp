// The host machine: owns the device (the "FPGA board"), the program
// executor, the global experiment clock, and the thermal rig. This is the
// top of the infrastructure stack — characterization code in src/core talks
// to a BenderHost exactly the way the paper's test programs talk to the
// modified DRAM Bender host tools over PCIe.
#pragma once

#include <memory>

#include "bender/executor.hpp"
#include "bender/program.hpp"
#include "bender/thermal.hpp"
#include "bender/transport.hpp"
#include "hbm/device.hpp"

namespace rh::bender {

class BenderHost {
public:
  explicit BenderHost(hbm::DeviceConfig device_config,
                      ThermalConfig thermal_config = ThermalConfig{});

  /// Ships `program` to the FPGA and runs it on one pseudo channel; the
  /// global clock advances by the program's duration. Returns the readback
  /// FIFO contents and timing.
  ExecutionResult run(const Program& program, std::uint32_t channel,
                      std::uint32_t pseudo_channel);

  /// Advances the global clock without issuing commands (host-side delay;
  /// retention keeps accruing, exactly like real wall-clock waiting).
  void idle_cycles(hbm::Cycle cycles) { now_ += cycles; }
  void idle_ms(double ms) { now_ += hbm::ms_to_cycles(ms); }

  /// Drives the thermal rig until it settles on `celsius` (the rig's PID
  /// loop runs in simulated time; the chip temperature follows the plant).
  /// Throws ConfigError if the rig cannot settle within `timeout_s`.
  void set_chip_temperature(double celsius, double timeout_s = 600.0);

  /// Attaches a telemetry sink to the underlying device (nullptr detaches).
  /// The sink must outlive the host or be detached before destruction.
  void set_telemetry(telemetry::Telemetry* sink) { device_->set_telemetry(sink); }

  [[nodiscard]] hbm::Cycle now() const { return now_; }
  [[nodiscard]] hbm::Device& device() { return *device_; }
  [[nodiscard]] const hbm::Device& device() const { return *device_; }
  [[nodiscard]] ThermalRig& thermal() { return thermal_; }
  [[nodiscard]] PcieLink& link() { return link_; }

  /// Host-side wall-clock estimate, milliseconds: DRAM program time + idle
  /// waits + PCIe transfer time for uploads/readbacks. The PCIe share is
  /// what makes batching probes into programs worthwhile on real hardware.
  [[nodiscard]] double wall_ms() const { return hbm::cycles_to_ms(now_) + link_.busy_ms(); }

private:
  std::unique_ptr<hbm::Device> device_;
  Executor executor_;
  ThermalRig thermal_;
  PcieLink link_;
  hbm::Cycle now_ = 0;
};

}  // namespace rh::bender
