// The host machine: owns the device (the "FPGA board"), the program
// executor, the global experiment clock, and the thermal rig. This is the
// top of the infrastructure stack — characterization code in src/core talks
// to a BenderHost exactly the way the paper's test programs talk to the
// modified DRAM Bender host tools over PCIe.
//
// Resilience: with a resilience::FaultInjector attached (see
// src/resilience), the host survives the infrastructure failures a real rig
// sees. Program uploads retry under a bounded RetryPolicy with exponential
// backoff (jittered, charged to wall_ms); readback drains are CRC32-framed
// so corruption and short reads are *detected* and healed by re-draining
// the FIFO; a lost doorbell (executor stall) is re-armed after a watchdog
// wait; and an injected thermal excursion trips the temperature guard,
// which pauses the experiment and re-settles the rig to within ±1 degC of
// the setpoint (the paper's stated control tolerance). Every transport
// recovery is wall-clock-only — the device clock and DRAM state are never
// touched — which is what keeps campaign results byte-identical to a
// fault-free run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bender/executor.hpp"
#include "bender/program.hpp"
#include "bender/thermal.hpp"
#include "bender/trace_engine.hpp"
#include "bender/transport.hpp"
#include "hbm/device.hpp"
#include "profiling/profile.hpp"
#include "resilience/fault.hpp"
#include "resilience/retry.hpp"

namespace rh::telemetry {
class TraceContext;   // span.hpp — causal span tracing
class MetricsSampler;  // stream.hpp — cycles-cadence metrics sampling
}  // namespace rh::telemetry

namespace rh::bender {

/// Host-side recovery bookkeeping, one struct per host. All counts are
/// *detections and reactions* — the injector's own stats count injections;
/// tests assert the two agree (nothing slips through silently).
struct HostResilienceStats {
  std::uint64_t detected = 0;         ///< faults observed (all kinds)
  std::uint64_t retried = 0;          ///< backoff waits charged
  std::uint64_t recovered = 0;        ///< faults healed
  std::uint64_t aborted = 0;          ///< faults that exhausted their budget
  std::uint64_t upload_failures = 0;  ///< timed-out or dropped uploads
  std::uint64_t crc_failures = 0;     ///< corrupt drains caught by CRC
  std::uint64_t short_reads = 0;      ///< truncated drains caught by length
  std::uint64_t stalls = 0;           ///< executor stalls caught by watchdog
  std::uint64_t reruns = 0;           ///< full idempotent program re-runs
  std::uint64_t guard_pauses = 0;     ///< temperature-guard interventions
  double retry_wait_ms = 0.0;         ///< backoff + watchdog wall time
};

class BenderHost {
public:
  explicit BenderHost(hbm::DeviceConfig device_config,
                      ThermalConfig thermal_config = ThermalConfig{});

  /// Ships `program` to the FPGA and runs it on one pseudo channel; the
  /// global clock advances by the program's duration. Returns the readback
  /// FIFO contents and timing. With a fault injector attached, transport
  /// failures are retried per the RetryPolicy; throws
  /// common::TransportError once the budget is exhausted.
  ExecutionResult run(const Program& program, std::uint32_t channel,
                      std::uint32_t pseudo_channel);

  /// Selects the program engine: kFast (default) runs programs through the
  /// TraceEngine with the cached fault kernel; kInterp runs the reference
  /// Executor with the reference fault scan. Both are bit-identical by
  /// contract (see common/engine.hpp); `bug` deliberately breaks the fast
  /// path for differential-rig sensitivity tests and is ignored for kInterp.
  void set_engine(common::EngineKind kind,
                  common::PlantedBug bug = common::PlantedBug::kNone);
  [[nodiscard]] common::EngineKind engine() const { return engine_; }

  /// Advances the global clock without issuing commands (host-side delay;
  /// retention keeps accruing, exactly like real wall-clock waiting).
  void idle_cycles(hbm::Cycle cycles) { now_ += cycles; }
  void idle_ms(double ms) { now_ += hbm::ms_to_cycles(ms); }

  /// Drives the thermal rig until it settles on `celsius` (the rig's PID
  /// loop runs in simulated time; the chip temperature follows the plant).
  /// Tolerates injected excursions/drift by re-settling within the budget;
  /// throws common::ThermalError naming target and actual temperature if
  /// the rig cannot settle within `timeout_s`.
  void set_chip_temperature(double celsius, double timeout_s = 600.0);

  /// Attaches the fault-injection plane (nullptr detaches). The injector
  /// must outlive the host or be detached first; it also arms the
  /// transport layer and the temperature guard.
  void set_fault_injector(resilience::FaultInjector* injector);
  [[nodiscard]] resilience::FaultInjector* fault_injector() const { return injector_; }

  /// Transport retry/backoff policy (takes effect from the next run).
  void set_retry_policy(const resilience::RetryPolicy& policy) { policy_ = policy; }
  [[nodiscard]] const resilience::RetryPolicy& retry_policy() const { return policy_; }

  /// Called when the temperature guard pauses the experiment: the chip left
  /// `band_c` of the setpoint (injected excursion, plant upset) and the
  /// host is about to re-settle before issuing further commands. The
  /// callback observes (target_c, actual_c); hammering resumes only after
  /// the rig is back inside the band. Guard checks run while a fault
  /// injector is attached.
  using TemperatureGuard = std::function<void(double target_c, double actual_c)>;
  void set_temperature_guard(TemperatureGuard guard, double band_c = 1.0) {
    guard_ = std::move(guard);
    guard_band_c_ = band_c;
  }

  /// Attaches a telemetry sink to the underlying device (nullptr detaches).
  /// The sink must outlive the host or be detached before destruction. The
  /// host also reports resilience.* counters and FAULT/RECOVERY trace
  /// events into the same sink.
  void set_telemetry(telemetry::Telemetry* sink) {
    device_->set_telemetry(sink);
    telemetry_ = sink;
  }

  /// Attaches a causal span context (nullptr detaches): every program's
  /// upload/execute/drain (and any thermal-guard settle) becomes a child
  /// span of the context's innermost open span, and fault detections/
  /// recoveries become marks. The campaign attaches a per-shard context
  /// around each attempt; detached hosts pay one pointer test per phase.
  void set_trace_context(telemetry::TraceContext* ctx) { span_ctx_ = ctx; }
  [[nodiscard]] telemetry::TraceContext* trace_context() const { return span_ctx_; }

  /// Attaches a cycles-cadence metrics sampler (nullptr detaches). The host
  /// offers it a sampling opportunity after every program — the
  /// deterministic sites the rh-metrics-stream cycles series is built from.
  void set_cycle_sampler(telemetry::MetricsSampler* sampler) { sampler_ = sampler; }

  [[nodiscard]] const HostResilienceStats& resilience_stats() const { return stats_; }

  /// Host-level phase profile: upload / execute / drain / recover / thermal
  /// accounting for every program this host has run. device_cycles totals
  /// are deterministic (pure functions of the command stream); wall_ms is
  /// real process time. The campaign runner merges each worker host's
  /// profile into the fleet profile when the rig retires.
  [[nodiscard]] const profiling::Profile& profile() const { return profile_; }

  [[nodiscard]] hbm::Cycle now() const { return now_; }
  [[nodiscard]] hbm::Device& device() { return *device_; }
  [[nodiscard]] const hbm::Device& device() const { return *device_; }
  [[nodiscard]] ThermalRig& thermal() { return thermal_; }
  [[nodiscard]] PcieLink& link() { return link_; }

  /// Host-side wall-clock estimate, milliseconds: DRAM program time + idle
  /// waits + PCIe transfer time for uploads/readbacks + retry backoff and
  /// watchdog waits. The PCIe share is what makes batching probes into
  /// programs worthwhile on real hardware; the retry share is the price of
  /// surviving a lossy link.
  [[nodiscard]] double wall_ms() const {
    return hbm::cycles_to_ms(now_) + link_.busy_ms() + stats_.retry_wait_ms;
  }

private:
  /// Uploads `bytes` with bounded retries; throws TransportError when the
  /// attempt budget runs out.
  void upload_with_retry(std::size_t bytes, std::uint64_t op, std::uint32_t channel,
                         std::uint32_t pseudo_channel);
  /// CRC-framed FIFO drain with bounded re-drains. Returns false when the
  /// budget is exhausted without an intact frame (readback left pristine —
  /// the executor's copy is authoritative; the wire copy is what faults).
  bool download_with_verify(const std::vector<std::uint8_t>& readback, std::uint64_t op,
                            std::uint32_t channel, std::uint32_t pseudo_channel);
  /// Thermal fault opportunities + out-of-band re-settle (guard).
  void enforce_temperature_guard(std::uint32_t channel, std::uint32_t pseudo_channel);
  /// PID settle loop shared by set_chip_temperature and the guard. Returns
  /// true once settled within `timeout_s` of simulated plant time.
  bool settle_loop(double timeout_s);

  void fault_detected(resilience::FaultKind kind, std::uint32_t channel,
                      std::uint32_t pseudo_channel);
  void fault_recovered(resilience::FaultKind kind, std::uint32_t channel,
                       std::uint32_t pseudo_channel, const std::string& detail);
  void fault_aborted(resilience::FaultKind kind, std::uint32_t channel,
                     std::uint32_t pseudo_channel, const std::string& detail);
  /// Charges one backoff wait (wall clock only) for retry `attempt` of `op`.
  void charge_backoff(std::uint64_t op, unsigned attempt);

  /// Engine dispatch for one program run (both host run paths route here).
  ExecutionResult execute_program(const Program& program, std::uint32_t channel,
                                  std::uint32_t pseudo_channel);

  std::unique_ptr<hbm::Device> device_;
  Executor executor_;
  TraceEngine trace_engine_;
  common::EngineKind engine_ = common::EngineKind::kFast;
  ThermalRig thermal_;
  PcieLink link_;
  hbm::Cycle now_ = 0;

  resilience::FaultInjector* injector_ = nullptr;
  resilience::RetryPolicy policy_;
  profiling::Profile profile_;
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::TraceContext* span_ctx_ = nullptr;
  telemetry::MetricsSampler* sampler_ = nullptr;
  TemperatureGuard guard_;
  double guard_band_c_ = 1.0;
  HostResilienceStats stats_;
  std::uint64_t op_serial_ = 0;
};

}  // namespace rh::bender
