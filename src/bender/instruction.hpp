// The DRAM Bender program ISA.
//
// DRAM Bender (arXiv'22) exposes the DRAM command bus to a small in-FPGA
// program so experimenters control command order and spacing at interface-
// clock granularity. We model the same idea: a register machine whose
// instructions either issue DRAM commands, move/compare scalar registers,
// or advance time.
//
// Execution timing: every instruction occupies exactly one interface-clock
// cycle at issue; SLEEP occupies 1 + imm cycles; the HAMMER macro-ops occupy
// the cycles their unrolled ACT/PRE streams would (count * per-hammer
// period). The executor never inserts spacing on its own — programs that
// violate DRAM timing raise TimingError, which is the point: the paper's
// methodology depends on precise, verified command schedules.
//
// HAMMER / HAMMER_SINGLE are macro-ops for the innermost hammer loops:
// semantically identical to the equivalent ACT+PRE loop (a test proves the
// equivalence) but executed in O(1) simulator work instead of O(count).
#pragma once

#include <cstdint>
#include <string_view>

namespace rh::bender {

enum class Opcode : std::uint8_t {
  kNop,
  kLdi,     ///< rd <- imm
  kAddi,    ///< rd <- rs1 + imm (two's complement)
  kBlt,     ///< if regs[rs1] < regs[rs2] jump to instruction index imm
  kJmp,     ///< jump to instruction index imm
  kAct,     ///< ACT bank, row = regs[rs1]
  kPre,     ///< PRE bank
  kPreA,    ///< PREA (all banks in the pseudo channel)
  kWr,      ///< WR bank, column = regs[rs1], data = wide[wide][col slice]
  kRd,      ///< RD bank, column = regs[rs1]; pushes a burst to the readback FIFO
  kRef,     ///< REF (this pseudo channel)
  kMrs,     ///< mode register rd <- imm (channel-level)
  kSleep,   ///< advance time by imm extra cycles
  kHammer,  ///< imm hammers: ACT/PRE pairs alternating rows regs[rs1], regs[rs2];
            ///< imm2 = aggressor on-time in cycles (0 = minimal)
  kHammerSingle,  ///< imm single-sided hammers of row regs[rs1]; imm2 = on-time
  kSrEnter,  ///< self-refresh entry (all banks must be precharged)
  kSrExit,   ///< self-refresh exit
  kEnd,      ///< stop execution
};

[[nodiscard]] constexpr std::string_view to_string(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "NOP";
    case Opcode::kLdi: return "LDI";
    case Opcode::kAddi: return "ADDI";
    case Opcode::kBlt: return "BLT";
    case Opcode::kJmp: return "JMP";
    case Opcode::kAct: return "ACT";
    case Opcode::kPre: return "PRE";
    case Opcode::kPreA: return "PREA";
    case Opcode::kWr: return "WR";
    case Opcode::kRd: return "RD";
    case Opcode::kRef: return "REF";
    case Opcode::kMrs: return "MRS";
    case Opcode::kSleep: return "SLEEP";
    case Opcode::kHammer: return "HAMMER";
    case Opcode::kHammerSingle: return "HAMMERS";
    case Opcode::kSrEnter: return "SRE";
    case Opcode::kSrExit: return "SRX";
    case Opcode::kEnd: return "END";
  }
  return "?";
}

/// One decoded instruction. Fields are used per-opcode as documented above;
/// unused fields must be zero (Program::validate enforces ranges).
struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;    ///< destination register / MR index
  std::uint8_t rs1 = 0;   ///< source register 1
  std::uint8_t rs2 = 0;   ///< source register 2
  std::uint8_t bank = 0;  ///< bank operand for DRAM commands
  std::uint8_t wide = 0;  ///< wide (pattern) register for WR
  std::int64_t imm = 0;   ///< immediate / jump target / hammer count
  std::int64_t imm2 = 0;  ///< secondary immediate (hammer on-time)
};

/// Register file sizes.
inline constexpr std::uint32_t kScalarRegisters = 32;
inline constexpr std::uint32_t kWideRegisters = 8;

}  // namespace rh::bender
