#include "bender/program.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace rh::bender {

std::span<const std::uint8_t> Program::wide_register(std::uint32_t idx) const {
  RH_EXPECTS(idx < kWideRegisters);
  return wide_[idx];
}

void Program::set_wide_register(std::uint32_t idx, std::vector<std::uint8_t> data) {
  RH_EXPECTS(idx < kWideRegisters);
  wide_[idx] = std::move(data);
}

void Program::validate(const hbm::Geometry& geometry) const {
  if (code_.empty()) throw common::ProgramError("empty program");
  bool has_end = false;
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const Instruction& ins = code_[i];
    const auto fail = [&](const std::string& why) {
      throw common::ProgramError("instruction " + std::to_string(i) + " (" +
                                 std::string(to_string(ins.op)) + "): " + why);
    };
    if (ins.rd >= kScalarRegisters && ins.op != Opcode::kMrs) fail("rd out of range");
    if (ins.rs1 >= kScalarRegisters) fail("rs1 out of range");
    if (ins.rs2 >= kScalarRegisters) fail("rs2 out of range");
    switch (ins.op) {
      case Opcode::kAct:
      case Opcode::kPre:
      case Opcode::kWr:
      case Opcode::kRd:
      case Opcode::kHammer:
      case Opcode::kHammerSingle:
        if (ins.bank >= geometry.banks_per_pseudo_channel) fail("bank out of range");
        break;
      default:
        break;
    }
    switch (ins.op) {
      case Opcode::kWr:
        if (ins.wide >= kWideRegisters) fail("wide register out of range");
        if (wide_[ins.wide].size() != geometry.row_bytes()) {
          fail("wide register not preloaded with a full row image");
        }
        break;
      case Opcode::kBlt:
      case Opcode::kJmp:
        if (ins.imm < 0 || static_cast<std::size_t>(ins.imm) >= code_.size()) {
          fail("jump target out of range");
        }
        break;
      case Opcode::kSleep:
        if (ins.imm < 1) fail("sleep needs at least 1 cycle");
        break;
      case Opcode::kHammer:
      case Opcode::kHammerSingle:
        if (ins.imm < 0) fail("negative hammer count");
        if (ins.imm2 < 0) fail("negative on-time");
        break;
      case Opcode::kMrs:
        if (ins.rd >= 16) fail("mode register index out of range");
        if (ins.imm < 0 || ins.imm > 0xff) fail("mode register value out of range");
        break;
      case Opcode::kEnd:
        has_end = true;
        break;
      default:
        break;
    }
  }
  if (!has_end) throw common::ProgramError("program lacks END");
}

ProgramBuilder::ProgramBuilder(const hbm::Geometry& geometry, const hbm::TimingParams& timings)
    : geometry_(geometry), timings_(timings) {}

ProgramBuilder& ProgramBuilder::emit(const Instruction& instruction, hbm::Cycle cycles) {
  RH_EXPECTS(!ended_);
  program_.push(instruction);
  t_ += cycles;
  return *this;
}

ProgramBuilder& ProgramBuilder::nop() { return emit({.op = Opcode::kNop}, 1); }

ProgramBuilder& ProgramBuilder::ldi(std::uint8_t rd, std::int64_t imm) {
  return emit({.op = Opcode::kLdi, .rd = rd, .imm = imm}, 1);
}

ProgramBuilder& ProgramBuilder::addi(std::uint8_t rd, std::uint8_t rs1, std::int64_t imm) {
  return emit({.op = Opcode::kAddi, .rd = rd, .rs1 = rs1, .imm = imm}, 1);
}

ProgramBuilder& ProgramBuilder::blt(std::uint8_t rs1, std::uint8_t rs2, Label target) {
  return emit({.op = Opcode::kBlt, .rs1 = rs1, .rs2 = rs2,
               .imm = static_cast<std::int64_t>(target.index)},
              1);
}

ProgramBuilder& ProgramBuilder::jmp(Label target) {
  return emit({.op = Opcode::kJmp, .imm = static_cast<std::int64_t>(target.index)}, 1);
}

ProgramBuilder& ProgramBuilder::act(std::uint8_t bank, std::uint8_t row_reg) {
  return emit({.op = Opcode::kAct, .rs1 = row_reg, .bank = bank}, 1);
}

ProgramBuilder& ProgramBuilder::pre(std::uint8_t bank) {
  return emit({.op = Opcode::kPre, .bank = bank}, 1);
}

ProgramBuilder& ProgramBuilder::prea() { return emit({.op = Opcode::kPreA}, 1); }

ProgramBuilder& ProgramBuilder::wr(std::uint8_t bank, std::uint8_t col_reg,
                                   std::uint8_t wide_reg) {
  return emit({.op = Opcode::kWr, .rs1 = col_reg, .bank = bank, .wide = wide_reg}, 1);
}

ProgramBuilder& ProgramBuilder::rd(std::uint8_t bank, std::uint8_t col_reg) {
  return emit({.op = Opcode::kRd, .rs1 = col_reg, .bank = bank}, 1);
}

ProgramBuilder& ProgramBuilder::ref() { return emit({.op = Opcode::kRef}, 1); }

ProgramBuilder& ProgramBuilder::mrs(std::uint8_t mode_register, std::int64_t value) {
  return emit({.op = Opcode::kMrs, .rd = mode_register, .imm = value}, 1);
}

ProgramBuilder& ProgramBuilder::sleep(std::int64_t cycles) {
  RH_EXPECTS(cycles >= 1);
  return emit({.op = Opcode::kSleep, .imm = cycles}, 1 + static_cast<hbm::Cycle>(cycles));
}

hbm::Cycle ProgramBuilder::hammer_period(std::int64_t on_time) const {
  const hbm::Cycle on = std::max<hbm::Cycle>(static_cast<hbm::Cycle>(on_time), timings_.tRAS);
  return std::max(timings_.tRC, on + timings_.tRP);
}

ProgramBuilder& ProgramBuilder::hammer(std::uint8_t bank, std::uint8_t row_a_reg,
                                       std::uint8_t row_b_reg, std::int64_t count,
                                       std::int64_t on_time) {
  const hbm::Cycle cycles =
      static_cast<hbm::Cycle>(count) * 2 * hammer_period(on_time);
  return emit({.op = Opcode::kHammer, .rs1 = row_a_reg, .rs2 = row_b_reg, .bank = bank,
               .imm = count, .imm2 = on_time},
              cycles);
}

ProgramBuilder& ProgramBuilder::hammer_single(std::uint8_t bank, std::uint8_t row_reg,
                                              std::int64_t count, std::int64_t on_time) {
  const hbm::Cycle cycles = static_cast<hbm::Cycle>(count) * hammer_period(on_time);
  return emit({.op = Opcode::kHammerSingle, .rs1 = row_reg, .bank = bank, .imm = count,
               .imm2 = on_time},
              cycles);
}

ProgramBuilder& ProgramBuilder::sr_enter() { return emit({.op = Opcode::kSrEnter}, 1); }

ProgramBuilder& ProgramBuilder::sr_exit() { return emit({.op = Opcode::kSrExit}, 1); }

ProgramBuilder& ProgramBuilder::end() {
  emit({.op = Opcode::kEnd}, 1);
  ended_ = true;
  return *this;
}

Label ProgramBuilder::here() const { return Label{program_.instructions().size()}; }

namespace {
constexpr std::uint8_t kScratchRow = 31;
constexpr std::uint8_t kScratchCol = 30;
}  // namespace

ProgramBuilder& ProgramBuilder::init_row(std::uint8_t bank, std::uint32_t row,
                                         std::uint8_t wide_reg) {
  const auto pad_until = [this](hbm::Cycle target) {
    if (t_ >= target) return;
    const hbm::Cycle gap = target - t_;
    if (gap == 1) {
      nop();
    } else {
      sleep(static_cast<std::int64_t>(gap - 1));
    }
  };

  ldi(kScratchRow, row);
  const hbm::Cycle act_t = t_;
  act(bank, kScratchRow);
  hbm::Cycle last_col = 0;
  bool any_col = false;
  for (std::uint32_t col = 0; col < geometry_.columns_per_row; ++col) {
    ldi(kScratchCol, col);
    hbm::Cycle target = act_t + timings_.tRCD;
    if (any_col) target = std::max(target, last_col + timings_.tCCD);
    pad_until(target);
    last_col = t_;
    any_col = true;
    wr(bank, kScratchCol, wide_reg);
  }
  pad_until(std::max(act_t + timings_.tRAS, last_col + timings_.tWR));
  const hbm::Cycle pre_t = t_;
  pre(bank);
  pad_until(pre_t + timings_.tRP);
  return *this;
}

ProgramBuilder& ProgramBuilder::read_row(std::uint8_t bank, std::uint32_t row) {
  const auto pad_until = [this](hbm::Cycle target) {
    if (t_ >= target) return;
    const hbm::Cycle gap = target - t_;
    if (gap == 1) {
      nop();
    } else {
      sleep(static_cast<std::int64_t>(gap - 1));
    }
  };

  ldi(kScratchRow, row);
  const hbm::Cycle act_t = t_;
  act(bank, kScratchRow);
  hbm::Cycle last_col = 0;
  bool any_col = false;
  for (std::uint32_t col = 0; col < geometry_.columns_per_row; ++col) {
    ldi(kScratchCol, col);
    hbm::Cycle target = act_t + timings_.tRCD;
    if (any_col) target = std::max(target, last_col + timings_.tCCD);
    pad_until(target);
    last_col = t_;
    any_col = true;
    rd(bank, kScratchCol);
  }
  pad_until(std::max(act_t + timings_.tRAS, last_col + timings_.tRTP));
  const hbm::Cycle pre_t = t_;
  pre(bank);
  pad_until(pre_t + timings_.tRP);
  return *this;
}

ProgramBuilder& ProgramBuilder::touch_row(std::uint8_t bank, std::uint32_t row) {
  const auto pad_until = [this](hbm::Cycle target) {
    if (t_ >= target) return;
    const hbm::Cycle gap = target - t_;
    if (gap == 1) {
      nop();
    } else {
      sleep(static_cast<std::int64_t>(gap - 1));
    }
  };
  ldi(kScratchRow, row);
  const hbm::Cycle act_t = t_;
  act(bank, kScratchRow);
  pad_until(act_t + timings_.tRAS);
  const hbm::Cycle pre_t = t_;
  pre(bank);
  pad_until(std::max(pre_t + timings_.tRP, act_t + timings_.tRC));
  return *this;
}

ProgramBuilder& ProgramBuilder::hammer_loop_raw(std::uint8_t bank, std::uint32_t row_a,
                                                std::uint32_t row_b, std::uint32_t count,
                                                std::int64_t on_time) {
  // Register plan: r29 = i, r28 = count, r27 = row_a, r26 = row_b.
  // Builder virtual time models the FIRST iteration; the loop body is padded
  // so every iteration has identical, legal spacing.
  const auto pad_until = [this](hbm::Cycle target) {
    if (t_ >= target) return;
    const hbm::Cycle gap = target - t_;
    if (gap == 1) {
      nop();
    } else {
      sleep(static_cast<std::int64_t>(gap - 1));
    }
  };
  const hbm::Cycle on = std::max<hbm::Cycle>(static_cast<hbm::Cycle>(on_time), timings_.tRAS);

  ldi(29, 0);
  ldi(28, count);
  ldi(27, row_a);
  ldi(26, row_b);
  const Label loop = here();
  const hbm::Cycle act_a = t_;
  act(bank, 27);
  pad_until(act_a + on);
  pre(bank);
  pad_until(std::max(t_ - 1 + timings_.tRP, act_a + timings_.tRC));
  const hbm::Cycle act_b = t_;
  act(bank, 26);
  pad_until(act_b + on);
  const hbm::Cycle pre_b = t_;
  pre(bank);
  // The next iteration's ACT(row_a) happens 2 cycles after the BLT below;
  // pad so it clears both tRP (from PRE) and tRC (from ACT(row_b)).
  const hbm::Cycle next_act = std::max(pre_b + timings_.tRP, act_b + timings_.tRC);
  if (next_act > t_ + 2) pad_until(next_act - 2);
  addi(29, 29, 1);
  blt(29, 28, loop);
  return *this;
}

Program ProgramBuilder::take() {
  if (!ended_) end();
  program_.validate(geometry_);
  return std::move(program_);
}

namespace {

std::string reg(std::uint8_t r) { return "r" + std::to_string(r); }

}  // namespace

bool is_idempotent(const Program& program) {
  for (const Instruction& ins : program.instructions()) {
    switch (ins.op) {
      case Opcode::kWr:
      case Opcode::kHammer:
      case Opcode::kHammerSingle:
      case Opcode::kRef:
      case Opcode::kMrs:
      case Opcode::kSrEnter:
      case Opcode::kSrExit:
        return false;
      default:
        break;
    }
  }
  return true;
}

std::string disassemble(const Instruction& ins) {
  std::string out(to_string(ins.op));
  out += ' ';
  switch (ins.op) {
    case Opcode::kLdi:
      out += reg(ins.rd) + ", " + std::to_string(ins.imm);
      break;
    case Opcode::kAddi:
      out += reg(ins.rd) + ", " + reg(ins.rs1) + ", " + std::to_string(ins.imm);
      break;
    case Opcode::kBlt:
      out += reg(ins.rs1) + ", " + reg(ins.rs2) + ", @" + std::to_string(ins.imm);
      break;
    case Opcode::kJmp:
      out += "@" + std::to_string(ins.imm);
      break;
    case Opcode::kAct:
      out += "b" + std::to_string(ins.bank) + ", row=" + reg(ins.rs1);
      break;
    case Opcode::kPre:
      out += "b" + std::to_string(ins.bank);
      break;
    case Opcode::kWr:
      out += "b" + std::to_string(ins.bank) + ", col=" + reg(ins.rs1) + ", w" +
             std::to_string(ins.wide);
      break;
    case Opcode::kRd:
      out += "b" + std::to_string(ins.bank) + ", col=" + reg(ins.rs1);
      break;
    case Opcode::kMrs:
      out += "mr" + std::to_string(ins.rd) + " <- " + std::to_string(ins.imm);
      break;
    case Opcode::kSleep:
      out += std::to_string(ins.imm);
      break;
    case Opcode::kHammer:
      out += "b" + std::to_string(ins.bank) + ", rows=" + reg(ins.rs1) + "/" + reg(ins.rs2) +
             ", count=" + std::to_string(ins.imm) + ", tON=" + std::to_string(ins.imm2);
      break;
    case Opcode::kHammerSingle:
      out += "b" + std::to_string(ins.bank) + ", row=" + reg(ins.rs1) +
             ", count=" + std::to_string(ins.imm) + ", tON=" + std::to_string(ins.imm2);
      break;
    default:
      out.pop_back();  // opcode-only instructions: drop the trailing space
      break;
  }
  return out;
}

std::vector<std::string> disassemble(const Program& program) {
  std::vector<std::string> lines;
  lines.reserve(program.instructions().size());
  for (std::size_t i = 0; i < program.instructions().size(); ++i) {
    lines.push_back(std::to_string(i) + ": " + disassemble(program.instructions()[i]));
  }
  return lines;
}

}  // namespace rh::bender
