#include "bender/executor.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace rh::bender {

ExecutionResult Executor::run(const Program& program, std::uint32_t channel,
                              std::uint32_t pseudo_channel, hbm::Cycle start,
                              std::uint64_t instruction_budget) {
  program.validate(device_->geometry());
  const auto& code = program.instructions();
  const auto& geometry = device_->geometry();
  const auto& timings = device_->timings();

  ExecutionResult result;
  result.start_cycle = start;

  const auto host_start = std::chrono::steady_clock::now();
  std::array<std::int64_t, kScalarRegisters> regs{};
  std::vector<std::uint8_t> burst(geometry.bytes_per_column);
  hbm::Cycle t = start;
  std::size_t pc = 0;
  std::uint64_t executed = 0;
  RunMetrics metrics;

  const auto bank_addr = [&](std::uint8_t bank) {
    return hbm::BankAddress{channel, pseudo_channel, bank};
  };
  const auto reg_row = [&](std::uint8_t reg) {
    const std::int64_t row = regs[reg];
    if (row < 0 || row >= static_cast<std::int64_t>(geometry.rows_per_bank)) {
      throw common::ProgramError("row register value out of range: " + std::to_string(row));
    }
    return static_cast<std::uint32_t>(row);
  };
  const auto reg_col = [&](std::uint8_t reg) {
    const std::int64_t col = regs[reg];
    if (col < 0 || col >= static_cast<std::int64_t>(geometry.columns_per_row)) {
      throw common::ProgramError("column register value out of range: " + std::to_string(col));
    }
    return static_cast<std::uint32_t>(col);
  };
  const auto hammer_period = [&](std::int64_t on_time) {
    const hbm::Cycle on = std::max<hbm::Cycle>(static_cast<hbm::Cycle>(on_time), timings.tRAS);
    return std::max(timings.tRC, on + timings.tRP);
  };

  const Instruction* current = nullptr;
  try {
  while (pc < code.size()) {
    if (++executed > instruction_budget) {
      throw common::ProgramError("instruction budget exceeded (runaway loop?)");
    }
    const Instruction& ins = code[pc];
    current = &ins;
    hbm::Cycle cost = 1;
    std::size_t next = pc + 1;

    switch (ins.op) {
      case Opcode::kNop:
        break;
      case Opcode::kLdi:
        regs[ins.rd] = ins.imm;
        break;
      case Opcode::kAddi:
        regs[ins.rd] = regs[ins.rs1] + ins.imm;
        break;
      case Opcode::kBlt:
        if (regs[ins.rs1] < regs[ins.rs2]) next = static_cast<std::size_t>(ins.imm);
        break;
      case Opcode::kJmp:
        next = static_cast<std::size_t>(ins.imm);
        break;
      case Opcode::kAct:
        device_->activate(bank_addr(ins.bank), reg_row(ins.rs1), t);
        ++metrics.acts;
        break;
      case Opcode::kPre:
        device_->precharge(bank_addr(ins.bank), t);
        ++metrics.precharges;
        break;
      case Opcode::kPreA:
        device_->precharge_all(channel, pseudo_channel, t);
        ++metrics.precharges;
        break;
      case Opcode::kWr: {
        const std::uint32_t col = reg_col(ins.rs1);
        const auto wide = program.wide_register(ins.wide);
        const std::size_t off = static_cast<std::size_t>(col) * geometry.bytes_per_column;
        device_->write(bank_addr(ins.bank), col, wide.subspan(off, geometry.bytes_per_column), t);
        ++metrics.writes;
        break;
      }
      case Opcode::kRd: {
        const std::uint32_t col = reg_col(ins.rs1);
        device_->read(bank_addr(ins.bank), col, t, burst);
        result.readback.insert(result.readback.end(), burst.begin(), burst.end());
        ++metrics.reads;
        break;
      }
      case Opcode::kRef:
        device_->refresh(channel, pseudo_channel, t);
        ++metrics.refreshes;
        break;
      case Opcode::kMrs:
        device_->mode_register_set(channel, ins.rd, static_cast<std::uint32_t>(ins.imm), t);
        ++metrics.mode_register_writes;
        break;
      case Opcode::kSleep:
        cost = 1 + static_cast<hbm::Cycle>(ins.imm);
        break;
      case Opcode::kHammer: {
        const hbm::Cycle period = hammer_period(ins.imm2);
        cost = static_cast<hbm::Cycle>(ins.imm) * 2 * period;
        if (ins.imm > 0) {
          const hbm::Cycle on =
              std::max<hbm::Cycle>(static_cast<hbm::Cycle>(ins.imm2), timings.tRAS);
          device_->hammer_pair(bank_addr(ins.bank), reg_row(ins.rs1), reg_row(ins.rs2),
                               static_cast<std::uint64_t>(ins.imm), on, t + cost);
          metrics.acts += 2 * static_cast<std::uint64_t>(ins.imm);
          metrics.precharges += 2 * static_cast<std::uint64_t>(ins.imm);
        }
        break;
      }
      case Opcode::kHammerSingle: {
        const hbm::Cycle period = hammer_period(ins.imm2);
        cost = static_cast<hbm::Cycle>(ins.imm) * period;
        if (ins.imm > 0) {
          const hbm::Cycle on =
              std::max<hbm::Cycle>(static_cast<hbm::Cycle>(ins.imm2), timings.tRAS);
          device_->hammer_single(bank_addr(ins.bank), reg_row(ins.rs1),
                                 static_cast<std::uint64_t>(ins.imm), on, t + cost);
          metrics.acts += static_cast<std::uint64_t>(ins.imm);
          metrics.precharges += static_cast<std::uint64_t>(ins.imm);
        }
        break;
      }
      case Opcode::kSrEnter:
        device_->self_refresh_enter(channel, pseudo_channel, t);
        break;
      case Opcode::kSrExit:
        device_->self_refresh_exit(channel, pseudo_channel, t);
        break;
      case Opcode::kEnd: {
        result.end_cycle = t + 1;
        result.instructions_executed = executed;
        metrics.sim_wall_ms = hbm::cycles_to_ms(result.end_cycle - result.start_cycle);
        metrics.host_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - host_start).count();
        if (metrics.sim_wall_ms > 0.0) {
          metrics.act_rate_hz =
              static_cast<double>(metrics.acts) / (metrics.sim_wall_ms * 1e-3);
        }
        if (metrics.host_seconds > 0.0) {
          metrics.instructions_per_second =
              static_cast<double>(executed) / metrics.host_seconds;
        }
        result.metrics = metrics;
        return result;
      }
    }
    t += cost;
    pc = next;
  }
  throw common::ProgramError("program ran off the end without END");
  } catch (common::Error& e) {
    std::string ctx = "after " + std::to_string(executed) + " instructions, cycle " +
                      std::to_string(t);
    if (current != nullptr) {
      ctx += ", pc " + std::to_string(pc) + ": " + disassemble(*current);
    }
    e.attach_context(ctx);
    throw;
  }
}

}  // namespace rh::bender
