// The *undisclosed* in-DRAM Target Row Refresh mechanism (paper §5).
//
// The paper demonstrates (via the U-TRR retention side channel) that the
// tested HBM2 chip implements a proprietary TRR that:
//   - samples aggressor-row activations invisibly to the memory controller,
//   - is triggered by periodic REF commands, and
//   - performs one victim-row refresh every 17 REFs, resembling the
//     mechanism U-TRR (MICRO'21) uncovered in DDR4 chips from "Vendor C".
//
// We model exactly that: a single-entry activation sampler per pseudo
// channel and a REF counter; every `period`-th REF spends part of its
// refresh window preventively refreshing the sampled row's physical
// neighbours. The device (not this class) resolves logical->physical
// adjacency and performs the actual refresh, since the row decoder lives
// there.
//
// Nothing in the host-visible interface exposes this mechanism — the U-TRR
// methodology in core/utrr.* must *discover* the period from the outside.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.hpp"

namespace rh::trr {

struct ProprietaryTrrConfig {
  bool enabled = true;
  /// Victim-row refresh fires once per this many REF commands (paper: 17).
  std::uint32_t period = 17;
  /// How far around the sampled aggressor the mitigation refreshes
  /// (physical distance; 2 covers the blast radius).
  std::uint32_t neighborhood = 2;
  /// Probability that any given ACT replaces the sampler contents. 1.0 is
  /// a last-activation sampler (Vendor-C-like behaviour under U-TRR's
  /// single-aggressor probe).
  double sample_probability = 1.0;
  /// Seed for the sampling coin flips when sample_probability < 1.
  std::uint64_t seed = 0x7127e5eedULL;
};

/// What the mitigation decided to do at a REF boundary.
struct TrrAction {
  std::uint32_t bank = 0;
  std::uint32_t logical_row = 0;
};

class ProprietaryTrr {
public:
  explicit ProprietaryTrr(const ProprietaryTrrConfig& cfg);

  /// Called by the device on every ACT in this pseudo channel.
  void observe_activate(std::uint32_t bank, std::uint32_t logical_row);

  /// Called by the device on every REF in this pseudo channel. Returns the
  /// victim-refresh action when this REF is the one-in-`period` TRR slot and
  /// an aggressor has been sampled since the last firing.
  [[nodiscard]] std::optional<TrrAction> on_refresh();

  /// Clears sampler and counter (power-up / self-refresh exit).
  void reset();

  [[nodiscard]] const ProprietaryTrrConfig& config() const { return cfg_; }

  // --- Introspection (differential engine tests only) --------------------
  [[nodiscard]] std::uint64_t ref_count() const { return ref_count_; }
  [[nodiscard]] bool sample_valid() const { return sample_valid_; }
  [[nodiscard]] const TrrAction& sample() const { return sample_; }

private:
  ProprietaryTrrConfig cfg_;
  common::Xoshiro256 rng_;
  std::uint64_t ref_count_ = 0;
  bool sample_valid_ = false;
  TrrAction sample_{};
};

}  // namespace rh::trr
