#include "trr/documented_trr.hpp"

#include <algorithm>

namespace rh::trr {

void DocumentedTrrMode::enter(std::uint32_t bank) {
  active_ = true;
  bank_ = bank;
  aggressors_.clear();
}

void DocumentedTrrMode::exit() {
  active_ = false;
  aggressors_.clear();
}

void DocumentedTrrMode::observe_activate(std::uint32_t bank, std::uint32_t logical_row) {
  if (!active_ || bank != bank_) return;
  if (std::find(aggressors_.begin(), aggressors_.end(), logical_row) != aggressors_.end()) return;
  if (aggressors_.size() >= kMaxAggressors) return;
  aggressors_.push_back(logical_row);
}

std::optional<DocumentedTrrAction> DocumentedTrrMode::on_refresh() {
  if (!active_ || aggressors_.empty()) return std::nullopt;
  return DocumentedTrrAction{bank_, aggressors_};
}

}  // namespace rh::trr
