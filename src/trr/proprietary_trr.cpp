#include "trr/proprietary_trr.hpp"

#include "common/assert.hpp"

namespace rh::trr {

ProprietaryTrr::ProprietaryTrr(const ProprietaryTrrConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {
  RH_EXPECTS(cfg_.period > 0);
  RH_EXPECTS(cfg_.sample_probability >= 0.0 && cfg_.sample_probability <= 1.0);
}

void ProprietaryTrr::observe_activate(std::uint32_t bank, std::uint32_t logical_row) {
  if (!cfg_.enabled) return;
  if (cfg_.sample_probability < 1.0 && rng_.uniform() >= cfg_.sample_probability) return;
  sample_ = TrrAction{bank, logical_row};
  sample_valid_ = true;
}

std::optional<TrrAction> ProprietaryTrr::on_refresh() {
  if (!cfg_.enabled) return std::nullopt;
  ++ref_count_;
  if (ref_count_ % cfg_.period != 0) return std::nullopt;
  if (!sample_valid_) return std::nullopt;
  sample_valid_ = false;
  return sample_;
}

void ProprietaryTrr::reset() {
  ref_count_ = 0;
  sample_valid_ = false;
}

}  // namespace rh::trr
