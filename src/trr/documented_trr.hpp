// The *documented* HBM2 TRR mode (JESD235).
//
// The standard specifies an explicit Target Row Refresh mode: the memory
// controller enables TRR mode via a mode register (designating a bank),
// activates the aggressor row(s) it wants mitigated, and subsequent REF
// commands refresh the aggressors' neighbourhoods until the mode is exited.
// This is entirely controller-visible — unlike the proprietary mechanism of
// paper §5, which exists *in addition to* this mode (footnote 1).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace rh::trr {

/// A victim-refresh the documented mode wants performed at a REF boundary.
struct DocumentedTrrAction {
  std::uint32_t bank = 0;
  std::vector<std::uint32_t> logical_rows;  ///< aggressors announced by the controller
};

class DocumentedTrrMode {
public:
  /// Mode entry (MRS write with the TRR-enable bit): begins capturing
  /// aggressor activations in `bank`.
  void enter(std::uint32_t bank);

  /// Mode exit (MRS write clearing the bit).
  void exit();

  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] std::uint32_t bank() const { return bank_; }

  /// Called on every ACT while the mode is active; records aggressors in the
  /// designated bank (the standard allows up to 4 per TRR cycle).
  void observe_activate(std::uint32_t bank, std::uint32_t logical_row);

  /// Called on each REF while active: returns the recorded aggressors whose
  /// neighbourhoods must be refreshed (the device performs the refresh).
  [[nodiscard]] std::optional<DocumentedTrrAction> on_refresh();

private:
  static constexpr std::size_t kMaxAggressors = 4;
  bool active_ = false;
  std::uint32_t bank_ = 0;
  std::vector<std::uint32_t> aggressors_;
};

}  // namespace rh::trr
