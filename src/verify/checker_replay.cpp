#include "verify/checker_replay.hpp"

#include "common/assert.hpp"
#include "common/error.hpp"
#include "verify/oracle.hpp"

namespace rh::verify {

std::string timing_rule(std::string_view message) {
  constexpr std::string_view prefix = "timing violation: ";
  constexpr std::string_view suffix = " requires";
  const auto start = message.find(prefix);
  if (start == std::string_view::npos) return std::string(message);
  const auto from = start + prefix.size();
  const auto end = message.find(suffix, from);
  if (end == std::string_view::npos) return std::string(message.substr(from));
  return std::string(message.substr(from, end - from));
}

std::string protocol_tag(std::string_view message) {
  struct Mapping {
    std::string_view prefix;
    const char* tag;
  };
  static constexpr Mapping kMappings[] = {
      {"ACT to a bank with an open row", "act-open"},
      {"PRE to a bank with no open row", "pre-closed"},
      {"RD to a bank with no open row", "rd-closed"},
      {"WR to a bank with no open row", "wr-closed"},
      {"REF with an open bank", "ref-open"},
  };
  for (const auto& m : kMappings) {
    if (message.rfind(m.prefix, 0) == 0) return m.tag;
  }
  return std::string(message);  // unmapped wording shows up verbatim in diffs
}

CheckerReplay::CheckerReplay(const hbm::TimingParams& timings, std::uint32_t banks)
    : t_(timings), channel_(t_) {
  RH_EXPECTS(banks > 0);
  banks_.reserve(banks);
  for (std::uint32_t b = 0; b < banks; ++b) banks_.emplace_back(t_);
}

Verdict CheckerReplay::step(const Command& c) {
  RH_EXPECTS(c.bank < banks_.size());
  try {
    switch (c.op) {
      case Op::kAct:
        channel_.on_activate(c.cycle, c.bank);
        banks_[c.bank].on_activate(c.cycle, c.arg);
        break;
      case Op::kPre:
        channel_.check_not_refreshing(c.cycle);
        banks_[c.bank].on_precharge(c.cycle);
        break;
      case Op::kPreAll:
        channel_.check_not_refreshing(c.cycle);
        for (auto& b : banks_) {
          if (b.open()) b.on_precharge(c.cycle);
        }
        break;
      case Op::kRead:
        channel_.on_column(c.cycle, /*is_write=*/false);
        banks_[c.bank].on_read(c.cycle);
        break;
      case Op::kWrite:
        channel_.on_column(c.cycle, /*is_write=*/true);
        banks_[c.bank].on_write(c.cycle);
        break;
      case Op::kRef:
        for (const auto& b : banks_) {
          if (b.open()) throw common::ProtocolError("REF with an open bank");
        }
        channel_.on_refresh(c.cycle);
        break;
    }
  } catch (const common::TimingError& e) {
    return timing_verdict(timing_rule(e.what()));
  } catch (const common::ProtocolError& e) {
    return protocol_verdict(protocol_tag(e.what()));
  }
  return ok_verdict();
}

std::vector<Verdict> replay_checker(const CommandStream& commands,
                                    const hbm::TimingParams& timings, std::uint32_t banks) {
  CheckerReplay replay(timings, banks);
  std::vector<Verdict> verdicts;
  verdicts.reserve(commands.size());
  for (const auto& c : commands) {
    verdicts.push_back(replay.step(c));
    if (!verdicts.back().ok()) break;
  }
  return verdicts;
}

std::vector<Verdict> replay_oracle(const CommandStream& commands, const hbm::TimingParams& timings,
                                   std::uint32_t banks, const std::string& disabled_rule) {
  TimingOracle oracle(timings, banks, disabled_rule);
  std::vector<Verdict> verdicts;
  verdicts.reserve(commands.size());
  for (const auto& c : commands) {
    verdicts.push_back(oracle.step(c));
    if (!verdicts.back().ok()) break;
  }
  return verdicts;
}

}  // namespace rh::verify
