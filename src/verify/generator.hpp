// Seeded property-based command-stream generation.
//
// generate_valid() builds streams that are legal *by construction*: every
// command is placed at or after the oracle's earliest_legal() cycle for
// its (op, bank), with small random jitter (and an occasional long gap so
// rules with history — tFAW, tRFC — get exercised from both sides). Op
// choice is weighted toward the interesting traffic mix (ACT-heavy, with
// occasional REF/PREA).
//
// mutate_stream() then injects exactly one perturbation drawn from a small
// operator set — tightening a command below its deadline, duplicating an
// ACT, dropping a PRE, retargeting a bank, inserting an early REF. Most
// mutants violate some rule; the differential property is not "mutants
// fail" but "both implementations say the *same thing* about them", so
// mutants that happen to stay legal are useful inputs too.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/rng.hpp"
#include "hbm/timing.hpp"
#include "verify/command_stream.hpp"

namespace rh::verify {

struct GenConfig {
  hbm::TimingParams timings{};
  std::uint32_t banks = 8;
  std::uint32_t rows = 64;
  std::uint32_t cols = 32;
  std::size_t max_cmds = 48;
  /// Oracle rule ignored during generation and comparison (planted bug).
  std::string disabled_rule;
};

/// Generates one valid-by-construction stream with strictly increasing
/// cycles. With a disabled_rule set, "valid" means valid per the *planted*
/// oracle — the production checker may legitimately object.
[[nodiscard]] CommandStream generate_valid(common::Xoshiro256& rng, const GenConfig& cfg);

enum class MutationKind : std::uint8_t { kTighten, kDupAct, kDropPre, kRetargetBank, kEarlyRef };

[[nodiscard]] std::string_view to_string(MutationKind kind);

/// Applies one random mutation in place. Returns the operator applied, or
/// nullopt when no operator had an applicable site (tiny streams).
[[nodiscard]] std::optional<MutationKind> mutate_stream(common::Xoshiro256& rng, CommandStream& s,
                                                        const GenConfig& cfg);

}  // namespace rh::verify
