#include "verify/shrink.hpp"

#include <algorithm>

namespace rh::verify {

namespace {

[[nodiscard]] CommandStream without_range(const CommandStream& s, std::size_t start,
                                          std::size_t count) {
  CommandStream out;
  out.reserve(s.size() - count);
  out.insert(out.end(), s.begin(), s.begin() + static_cast<std::ptrdiff_t>(start));
  out.insert(out.end(), s.begin() + static_cast<std::ptrdiff_t>(std::min(s.size(), start + count)),
             s.end());
  return out;
}

}  // namespace

CommandStream shrink_stream(CommandStream failing, const FailPredicate& still_fails) {
  std::size_t chunk = std::max<std::size_t>(1, failing.size() / 2);
  while (true) {
    bool reduced = false;
    for (std::size_t start = 0; start < failing.size(); start += chunk) {
      CommandStream candidate = without_range(failing, start, chunk);
      if (candidate.empty()) continue;  // an empty stream cannot fail
      if (still_fails(candidate)) {
        failing = std::move(candidate);
        reduced = true;
        // Restart the sweep: indices shifted under us.
        break;
      }
    }
    if (reduced) continue;
    if (chunk == 1) break;
    chunk = std::max<std::size_t>(1, chunk / 2);
  }
  return failing;
}

}  // namespace rh::verify
