#include "verify/golden.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace rh::verify {

namespace {

[[nodiscard]] const char* kind_name(campaign::JsonValue::Kind kind) {
  using Kind = campaign::JsonValue::Kind;
  switch (kind) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "bool";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

void shape_node(const campaign::JsonValue& value, const std::string& path,
                std::vector<std::string>& out) {
  out.push_back((path.empty() ? "/" : path) + " " + kind_name(value.kind));
  if (value.kind == campaign::JsonValue::Kind::kObject) {
    for (const auto& [key, member] : value.members) shape_node(member, path + "/" + key, out);
  } else if (value.kind == campaign::JsonValue::Kind::kArray && !value.items.empty()) {
    // Arrays are homogeneous in all our schemas; the first element stands
    // in for the element shape.
    shape_node(value.items.front(), path + "/[]", out);
  }
}

}  // namespace

std::vector<std::string> json_shape(const campaign::JsonValue& value) {
  std::vector<std::string> out;
  shape_node(value, "", out);
  return out;
}

std::string shape_text(std::string_view json, const std::string& what) {
  const auto value = campaign::parse_json(json, what);
  std::string out;
  for (const auto& line : json_shape(value)) {
    out += line;
    out += '\n';
  }
  return out;
}

std::optional<std::string> check_golden(const std::string& golden_path,
                                        const std::string& actual_shape) {
  if (std::getenv("RH_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    if (!out) throw common::ConfigError("cannot write golden file: " + golden_path);
    out << actual_shape;
    return std::nullopt;
  }

  std::ifstream in(golden_path);
  if (!in) {
    return "golden file missing: " + golden_path +
           " (run with RH_UPDATE_GOLDEN=1 to create it, then review and commit)";
  }
  std::ostringstream expected_stream;
  expected_stream << in.rdbuf();
  const std::string expected = expected_stream.str();
  if (expected == actual_shape) return std::nullopt;

  // Name the first divergent line so the failure reads as a schema diff.
  std::istringstream exp(expected);
  std::istringstream act(actual_shape);
  std::string exp_line;
  std::string act_line;
  std::size_t lineno = 0;
  while (true) {
    ++lineno;
    const bool has_exp = static_cast<bool>(std::getline(exp, exp_line));
    const bool has_act = static_cast<bool>(std::getline(act, act_line));
    if (!has_exp && !has_act) break;  // differ only in trailing bytes
    if (!has_exp || !has_act || exp_line != act_line) {
      return "schema drift vs " + golden_path + " at line " + std::to_string(lineno) +
             ":\n  golden: " + (has_exp ? exp_line : "<end of file>") +
             "\n  actual: " + (has_act ? act_line : "<end of file>") +
             "\n(if intentional, regenerate with RH_UPDATE_GOLDEN=1 and review the diff)";
    }
  }
  return "golden file differs in whitespace/trailing bytes: " + golden_path;
}

}  // namespace rh::verify
