#include "verify/command_stream.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace rh::verify {

namespace {

/// Timing parameters reachable from `! timing <name> <cycles>` directives.
/// refresh_window / refs_per_window are refresh *scheduling*, not legality
/// rules, so they are deliberately absent.
struct TimingField {
  const char* name;
  hbm::Cycle hbm::TimingParams::*field;
};

constexpr TimingField kTimingFields[] = {
    {"tRC", &hbm::TimingParams::tRC},       {"tRAS", &hbm::TimingParams::tRAS},
    {"tRP", &hbm::TimingParams::tRP},       {"tRCD", &hbm::TimingParams::tRCD},
    {"tWR", &hbm::TimingParams::tWR},       {"tRTP", &hbm::TimingParams::tRTP},
    {"tCCD", &hbm::TimingParams::tCCD},     {"tRRD", &hbm::TimingParams::tRRD},
    {"tRRD_L", &hbm::TimingParams::tRRD_L}, {"tFAW", &hbm::TimingParams::tFAW},
    {"tWTR", &hbm::TimingParams::tWTR},     {"tRFC", &hbm::TimingParams::tRFC},
    {"tREFI", &hbm::TimingParams::tREFI},
};

[[nodiscard]] bool needs_bank(Op op) {
  return op == Op::kAct || op == Op::kPre || op == Op::kRead || op == Op::kWrite;
}

[[nodiscard]] bool needs_arg(Op op) {
  return op == Op::kAct || op == Op::kRead || op == Op::kWrite;
}

[[nodiscard]] std::optional<Op> parse_op(std::string_view token) {
  if (token == "ACT") return Op::kAct;
  if (token == "PRE") return Op::kPre;
  if (token == "PREA") return Op::kPreAll;
  if (token == "RD") return Op::kRead;
  if (token == "WR") return Op::kWrite;
  if (token == "REF") return Op::kRef;
  return std::nullopt;
}

}  // namespace

std::string_view to_string(Op op) {
  switch (op) {
    case Op::kAct: return "ACT";
    case Op::kPre: return "PRE";
    case Op::kPreAll: return "PREA";
    case Op::kRead: return "RD";
    case Op::kWrite: return "WR";
    case Op::kRef: return "REF";
  }
  return "?";
}

StreamFile parse_stream(std::string_view text, const std::string& what) {
  StreamFile out;
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  const auto fail = [&](const std::string& msg) -> void {
    throw common::ConfigError(what + ":" + std::to_string(lineno) + ": " + msg);
  };

  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok) || tok[0] == '#') continue;

    if (tok == "!") {
      std::string directive;
      if (!(ls >> directive)) fail("empty directive");
      if (directive == "banks") {
        if (!(ls >> out.banks) || out.banks == 0) fail("banks needs a positive count");
      } else if (directive == "timing") {
        std::string name;
        hbm::Cycle value = 0;
        if (!(ls >> name >> value)) fail("timing directive needs <name> <cycles>");
        bool known = false;
        for (const auto& f : kTimingFields) {
          if (name == f.name) {
            out.timings.*f.field = value;
            known = true;
            break;
          }
        }
        if (name == "banks_per_group") {
          out.timings.banks_per_group = static_cast<std::uint32_t>(value);
          known = true;
        }
        if (!known) fail("unknown timing parameter: " + name);
      } else if (directive == "expect") {
        std::string kind;
        if (!(ls >> kind)) fail("expect directive needs a verdict");
        Expectation e;
        if (kind == "ok") {
          e.verdict = ok_verdict();
        } else {
          std::string rule;
          if (!(ls >> rule >> e.index)) fail("expect needs <kind> <rule> <index>");
          if (kind == "timing") {
            e.verdict = timing_verdict(rule);
          } else if (kind == "protocol") {
            e.verdict = protocol_verdict(rule);
          } else {
            fail("expect kind must be ok|timing|protocol, got: " + kind);
          }
        }
        out.expect = e;
      } else {
        fail("unknown directive: " + directive);
      }
      continue;
    }

    Command cmd;
    try {
      cmd.cycle = std::stoull(tok);
    } catch (const std::exception&) {
      fail("expected a cycle number, got: " + tok);
    }
    std::string op_tok;
    if (!(ls >> op_tok)) fail("missing command mnemonic");
    const auto op = parse_op(op_tok);
    if (!op) fail("unknown command mnemonic: " + op_tok);
    cmd.op = *op;
    if (needs_bank(*op) && !(ls >> cmd.bank)) fail("missing bank operand");
    if (needs_arg(*op) && !(ls >> cmd.arg)) fail("missing row/column operand");
    out.commands.push_back(cmd);
  }

  lineno = 0;  // range errors are file-level, not line-level
  for (const auto& cmd : out.commands) {
    if (cmd.bank >= out.banks) {
      throw common::ConfigError(what + ": bank " + std::to_string(cmd.bank) +
                                " out of range (banks=" + std::to_string(out.banks) + ")");
    }
  }
  return out;
}

StreamFile load_stream_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw common::ConfigError("cannot open command stream: " + path);
  std::ostringstream text;
  text << file.rdbuf();
  return parse_stream(text.str(), path);
}

std::string format_stream(const CommandStream& commands) {
  std::string out;
  for (const auto& cmd : commands) {
    out += std::to_string(cmd.cycle);
    out += ' ';
    out += to_string(cmd.op);
    if (needs_bank(cmd.op)) {
      out += ' ';
      out += std::to_string(cmd.bank);
    }
    if (needs_arg(cmd.op)) {
      out += ' ';
      out += std::to_string(cmd.arg);
    }
    out += '\n';
  }
  return out;
}

std::string format_stream_file(const CommandStream& commands, const hbm::TimingParams& timings,
                               std::uint32_t banks, const std::vector<std::string>& comments) {
  const hbm::TimingParams defaults{};
  std::string out = "# rh-command-stream/v1\n";
  for (const auto& c : comments) out += "# " + c + "\n";
  if (banks != StreamFile{}.banks) out += "! banks " + std::to_string(banks) + "\n";
  for (const auto& f : kTimingFields) {
    if (timings.*f.field != defaults.*f.field) {
      out += std::string("! timing ") + f.name + " " + std::to_string(timings.*f.field) + "\n";
    }
  }
  if (timings.banks_per_group != defaults.banks_per_group) {
    out += "! timing banks_per_group " + std::to_string(timings.banks_per_group) + "\n";
  }
  out += format_stream(commands);
  return out;
}

}  // namespace rh::verify
