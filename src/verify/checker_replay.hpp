// Replays command streams through the *production* timing checkers
// (hbm::ChannelTiming + hbm::BankTiming), mirroring PseudoChannel's
// dispatch order exactly, and converts the resulting exceptions into
// Verdicts the differential harness can compare against the oracle's.
//
// Replay is stop-at-first-violation: the checker classes validate before
// mutating, but a multi-object dispatch (channel state updates before a
// bank-level throw) would leave partially-applied state, so continuing
// past a violation is not well-defined for either implementation. A
// verdict list is therefore zero or more `ok` entries, optionally
// terminated by one violation.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "hbm/timing_checker.hpp"
#include "verify/command_stream.hpp"
#include "verify/verdict.hpp"

namespace rh::verify {

/// Extracts the rule name from a TimingError message
/// ("timing violation: tRC requires ..." -> "tRC").
[[nodiscard]] std::string timing_rule(std::string_view message);

/// Maps a ProtocolError message to its stable comparison tag
/// ("ACT to a bank with an open row" -> "act-open").
[[nodiscard]] std::string protocol_tag(std::string_view message);

class CheckerReplay {
public:
  CheckerReplay(const hbm::TimingParams& timings, std::uint32_t banks);

  CheckerReplay(const CheckerReplay&) = delete;
  CheckerReplay& operator=(const CheckerReplay&) = delete;

  /// Dispatches one command through the production checkers; exceptions
  /// become verdicts. Callers must stop at the first non-ok verdict.
  Verdict step(const Command& c);

private:
  hbm::TimingParams t_;  ///< owned: the checker objects keep pointers into it
  hbm::ChannelTiming channel_;
  std::vector<hbm::BankTiming> banks_;
};

/// Replays `commands`, stopping at the first violation. The returned list
/// has one verdict per *executed* command.
[[nodiscard]] std::vector<Verdict> replay_checker(const CommandStream& commands,
                                                  const hbm::TimingParams& timings,
                                                  std::uint32_t banks);

/// Same, through the oracle. `disabled_rule` is the planted-bug knob.
[[nodiscard]] std::vector<Verdict> replay_oracle(const CommandStream& commands,
                                                 const hbm::TimingParams& timings,
                                                 std::uint32_t banks,
                                                 const std::string& disabled_rule = {});

}  // namespace rh::verify
