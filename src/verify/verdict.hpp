// The unit of agreement between the production timing checkers and the
// independent JEDEC oracle: every replayed command gets exactly one
// Verdict, and the differential harness requires the two implementations
// to agree verdict-for-verdict — same outcome kind *and* same rule.
//
// Timing verdicts carry the rule name ("tRC", "tFAW", ...); protocol
// verdicts carry a stable tag ("act-open", "ref-open", ...) so the
// comparison does not depend on exact exception wording.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace rh::verify {

struct Verdict {
  enum class Kind : std::uint8_t { kOk, kTiming, kProtocol };

  Kind kind = Kind::kOk;
  std::string rule;  ///< timing rule name or protocol tag; empty for ok

  [[nodiscard]] bool ok() const { return kind == Kind::kOk; }

  friend bool operator==(const Verdict& a, const Verdict& b) {
    return a.kind == b.kind && a.rule == b.rule;
  }
  friend bool operator!=(const Verdict& a, const Verdict& b) { return !(a == b); }
};

[[nodiscard]] inline Verdict ok_verdict() { return {}; }

[[nodiscard]] inline Verdict timing_verdict(std::string rule) {
  return {Verdict::Kind::kTiming, std::move(rule)};
}

[[nodiscard]] inline Verdict protocol_verdict(std::string tag) {
  return {Verdict::Kind::kProtocol, std::move(tag)};
}

[[nodiscard]] inline std::string to_string(const Verdict& v) {
  switch (v.kind) {
    case Verdict::Kind::kOk: return "ok";
    case Verdict::Kind::kTiming: return "timing:" + v.rule;
    case Verdict::Kind::kProtocol: return "protocol:" + v.rule;
  }
  return "?";
}

}  // namespace rh::verify
