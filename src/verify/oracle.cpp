#include "verify/oracle.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rh::verify {

TimingOracle::TimingOracle(const hbm::TimingParams& timings, std::uint32_t banks,
                           std::string disabled_rule)
    : t_(timings), disabled_(std::move(disabled_rule)), banks_(banks) {
  RH_EXPECTS(banks > 0);
}

void TimingOracle::reset() {
  std::fill(banks_.begin(), banks_.end(), BankState{});
  bus_ = BusState{};
}

std::uint32_t TimingOracle::group_of(std::uint32_t bank) const {
  return t_.banks_per_group > 0 ? bank / t_.banks_per_group : 0;
}

void TimingOracle::gates_for(const Command& c, std::vector<Gate>& out) const {
  out.clear();
  const auto timing = [&](const char* tag, bool enabled, hbm::Cycle not_before) {
    out.push_back({Verdict::Kind::kTiming, tag, enabled, not_before});
  };
  const auto protocol = [&](const char* tag, bool violated) {
    out.push_back({Verdict::Kind::kProtocol, tag, violated, 0});
  };
  const auto refreshing = [&] { timing("tRFC", bus_.ref_done > 0, bus_.ref_done); };
  const BankState& bank = banks_[c.bank];

  switch (c.op) {
    case Op::kAct: {
      refreshing();
      timing("tRRD", bus_.ever_act, bus_.last_act + t_.tRRD);
      const std::uint32_t g = group_of(c.bank);
      const bool group_seen = g < bus_.group_ever_act.size() && bus_.group_ever_act[g];
      timing("tRRD_L", group_seen, group_seen ? bus_.group_last_act[g] + t_.tRRD_L : 0);
      const bool faw_full = bus_.faw_count >= 4;
      timing("tFAW", faw_full, faw_full ? bus_.faw[bus_.faw_count % 4] + t_.tFAW : 0);
      protocol("act-open", bank.open);
      timing("tRC", bank.ever_act, bank.last_act + t_.tRC);
      timing("tRP", bank.ever_pre, bank.last_pre + t_.tRP);
      break;
    }
    case Op::kPre: {
      refreshing();
      protocol("pre-closed", !bank.open);
      timing("tRAS", bank.ever_act, bank.last_act + t_.tRAS);
      timing("tWR", bank.ever_wr, bank.last_wr + t_.tWR);
      timing("tRTP", bank.ever_rd, bank.last_rd + t_.tRTP);
      break;
    }
    case Op::kPreAll: {
      refreshing();
      for (const auto& b : banks_) {
        if (!b.open) continue;
        timing("tRAS", b.ever_act, b.last_act + t_.tRAS);
        timing("tWR", b.ever_wr, b.last_wr + t_.tWR);
        timing("tRTP", b.ever_rd, b.last_rd + t_.tRTP);
      }
      break;
    }
    case Op::kRead: {
      refreshing();
      timing("tCCD", bus_.ever_col, bus_.last_col + t_.tCCD);
      timing("tWTR", bus_.ever_wr, bus_.last_wr + t_.tWTR);
      protocol("rd-closed", !bank.open);
      timing("tRCD", bank.ever_act, bank.last_act + t_.tRCD);
      break;
    }
    case Op::kWrite: {
      refreshing();
      timing("tCCD", bus_.ever_col, bus_.last_col + t_.tCCD);
      protocol("wr-closed", !bank.open);
      timing("tRCD", bank.ever_act, bank.last_act + t_.tRCD);
      break;
    }
    case Op::kRef: {
      bool any_open = false;
      for (const auto& b : banks_) any_open = any_open || b.open;
      protocol("ref-open", any_open);
      refreshing();
      break;
    }
  }
}

Verdict TimingOracle::check(const Command& c) const {
  RH_EXPECTS(c.bank < banks_.size());
  std::vector<Gate> gates;
  gates_for(c, gates);
  for (const auto& g : gates) {
    if (!g.enabled || g.tag == disabled_) continue;
    if (g.kind == Verdict::Kind::kProtocol) return protocol_verdict(g.tag);
    if (c.cycle < g.not_before) return timing_verdict(g.tag);
  }
  return ok_verdict();
}

Verdict TimingOracle::step(const Command& c) {
  Verdict v = check(c);
  if (v.ok()) apply(c);
  return v;
}

hbm::Cycle TimingOracle::earliest_legal(Op op, std::uint32_t bank) const {
  RH_EXPECTS(bank < banks_.size());
  std::vector<Gate> gates;
  gates_for({0, op, bank, 0}, gates);
  hbm::Cycle earliest = 0;
  for (const auto& g : gates) {
    if (g.kind != Verdict::Kind::kTiming || !g.enabled || g.tag == disabled_) continue;
    earliest = std::max(earliest, g.not_before);
  }
  return earliest;
}

bool TimingOracle::protocol_ok(Op op, std::uint32_t bank) const {
  RH_EXPECTS(bank < banks_.size());
  std::vector<Gate> gates;
  gates_for({0, op, bank, 0}, gates);
  for (const auto& g : gates) {
    if (g.kind == Verdict::Kind::kProtocol && g.enabled) return false;
  }
  return true;
}

void TimingOracle::apply(const Command& c) {
  BankState& bank = banks_[c.bank];
  switch (c.op) {
    case Op::kAct: {
      bus_.last_act = c.cycle;
      bus_.ever_act = true;
      const std::uint32_t g = group_of(c.bank);
      if (g >= bus_.group_ever_act.size()) {
        bus_.group_ever_act.resize(g + 1, false);
        bus_.group_last_act.resize(g + 1, 0);
      }
      bus_.group_ever_act[g] = true;
      bus_.group_last_act[g] = c.cycle;
      bus_.faw[bus_.faw_count % 4] = c.cycle;
      ++bus_.faw_count;
      bank.open = true;
      bank.open_row = c.arg;
      bank.last_act = c.cycle;
      bank.ever_act = true;
      break;
    }
    case Op::kPre:
      bank.open = false;
      bank.last_pre = c.cycle;
      bank.ever_pre = true;
      break;
    case Op::kPreAll:
      for (auto& b : banks_) {
        if (!b.open) continue;
        b.open = false;
        b.last_pre = c.cycle;
        b.ever_pre = true;
      }
      break;
    case Op::kRead:
      bus_.last_col = c.cycle;
      bus_.ever_col = true;
      bank.last_rd = c.cycle;
      bank.ever_rd = true;
      break;
    case Op::kWrite:
      bus_.last_col = c.cycle;
      bus_.ever_col = true;
      bus_.last_wr = c.cycle;
      bus_.ever_wr = true;
      bank.last_wr = c.cycle;
      bank.ever_wr = true;
      break;
    case Op::kRef:
      bus_.ref_done = c.cycle + t_.tRFC;
      break;
  }
}

}  // namespace rh::verify
