#include "verify/differential.hpp"

#include <fstream>
#include <ostream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "verify/checker_replay.hpp"
#include "verify/shrink.hpp"

namespace rh::verify {

std::optional<Disagreement> compare_stream(const CommandStream& commands,
                                           const hbm::TimingParams& timings, std::uint32_t banks,
                                           const std::string& disabled_rule) {
  const auto oracle = replay_oracle(commands, timings, banks, disabled_rule);
  const auto checker = replay_checker(commands, timings, banks);
  const std::size_t common_len = std::min(oracle.size(), checker.size());
  for (std::size_t i = 0; i < common_len; ++i) {
    if (oracle[i] != checker[i]) return Disagreement{i, oracle[i], checker[i]};
  }
  if (oracle.size() != checker.size()) {
    // One side stopped (violation) where the other carried on: the verdict
    // at the shorter side's end already differed, so common_len caught it —
    // unless the shorter list ended exactly at the stream's end. Guard the
    // remaining case: lists of different length with an agreeing prefix.
    const std::size_t i = common_len;
    const Verdict o = i < oracle.size() ? oracle[i] : ok_verdict();
    const Verdict c = i < checker.size() ? checker[i] : ok_verdict();
    return Disagreement{i, o, c};
  }
  return std::nullopt;
}

namespace {

void log_stream(std::ostream& log, const CommandStream& s) {
  for (const auto& c : s) {
    log << "    " << c.cycle << ' ' << to_string(c.op);
    if (c.op == Op::kAct || c.op == Op::kPre || c.op == Op::kRead || c.op == Op::kWrite) {
      log << ' ' << c.bank;
    }
    if (c.op == Op::kAct || c.op == Op::kRead || c.op == Op::kWrite) log << ' ' << c.arg;
    log << '\n';
  }
}

}  // namespace

FuzzStats run_fuzz(const FuzzConfig& cfg, std::ostream& log) {
  GenConfig gen = cfg.gen;
  gen.disabled_rule = cfg.disable_rule;

  log << "rh_fuzz: seed=" << cfg.seed << " iters=" << cfg.iters << " max-cmds=" << gen.max_cmds
      << " banks=" << gen.banks << " mutate=" << static_cast<int>(cfg.mutate_fraction * 100)
      << "% shrink=" << (cfg.shrink ? "on" : "off")
      << " disable-rule=" << (cfg.disable_rule.empty() ? "<none>" : cfg.disable_rule) << '\n';

  FuzzStats stats;
  stats.iters = cfg.iters;
  for (std::size_t iter = 0; iter < cfg.iters; ++iter) {
    common::Xoshiro256 rng(common::hash_coords(cfg.seed, iter));
    CommandStream stream = generate_valid(rng, gen);
    if (rng.uniform() < cfg.mutate_fraction) {
      if (mutate_stream(rng, stream, gen)) ++stats.mutated;
    }

    const auto disagreement = compare_stream(stream, gen.timings, gen.banks, cfg.disable_rule);
    if (!disagreement) {
      const auto verdicts = replay_checker(stream, gen.timings, gen.banks);
      if (!verdicts.empty() && !verdicts.back().ok()) ++stats.violating;
      continue;
    }

    ++stats.disagreements;
    log << "[iter " << iter << "] disagreement at cmd " << disagreement->index
        << ": oracle=" << to_string(disagreement->oracle)
        << " checker=" << to_string(disagreement->checker) << '\n';

    CommandStream repro = stream;
    if (cfg.shrink) {
      repro = shrink_stream(std::move(repro), [&](const CommandStream& candidate) {
        return compare_stream(candidate, gen.timings, gen.banks, cfg.disable_rule).has_value();
      });
      log << "[iter " << iter << "] shrunk " << stream.size() << " -> " << repro.size()
          << " commands:\n";
    } else {
      log << "[iter " << iter << "] repro (" << repro.size() << " commands, unshrunk):\n";
    }
    log_stream(log, repro);

    if (!cfg.corpus_dir.empty()) {
      const auto final_diff = compare_stream(repro, gen.timings, gen.banks, cfg.disable_rule);
      const std::string path = cfg.corpus_dir + "/disagree-seed" + std::to_string(cfg.seed) +
                               "-iter" + std::to_string(iter) + ".rhcs";
      std::ofstream out(path);
      if (!out) throw common::ConfigError("cannot write counterexample: " + path);
      std::vector<std::string> comments = {
          "shrunk disagreement from rh_fuzz --seed " + std::to_string(cfg.seed) + " (iter " +
              std::to_string(iter) + ")",
      };
      if (final_diff) {
        comments.push_back("at cmd " + std::to_string(final_diff->index) +
                           ": oracle=" + to_string(final_diff->oracle) +
                           " checker=" + to_string(final_diff->checker));
      }
      out << format_stream_file(repro, gen.timings, gen.banks, comments);
      stats.repro_paths.push_back(path);
      log << "[iter " << iter << "] wrote " << path << '\n';
    }
    stats.repros.push_back(std::move(repro));
  }

  log << "rh_fuzz: done iters=" << stats.iters << " mutated=" << stats.mutated
      << " violating=" << stats.violating << " disagreements=" << stats.disagreements << '\n';
  return stats;
}

}  // namespace rh::verify
