// The differential fuzz loop: generate -> (maybe) mutate -> replay through
// both implementations -> compare verdict-for-verdict -> shrink and record
// any disagreement.
//
// Everything is a pure function of (seed, config): per-iteration RNGs are
// derived with hash_coords(seed, iter), so `rh_fuzz --seed S --iters N`
// produces a byte-identical log on every run and any reported iteration
// can be re-run in isolation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "verify/command_stream.hpp"
#include "verify/generator.hpp"
#include "verify/verdict.hpp"

namespace rh::verify {

/// First index where the two verdict lists differ.
struct Disagreement {
  std::size_t index = 0;
  Verdict oracle;
  Verdict checker;
};

/// Replays `commands` through both implementations and reports the first
/// divergence, or nullopt when they agree verdict-for-verdict.
[[nodiscard]] std::optional<Disagreement> compare_stream(const CommandStream& commands,
                                                         const hbm::TimingParams& timings,
                                                         std::uint32_t banks,
                                                         const std::string& disabled_rule = {});

struct FuzzConfig {
  std::uint64_t seed = 1;
  std::size_t iters = 1000;
  GenConfig gen;
  double mutate_fraction = 0.6;  ///< fraction of iterations that get a mutation
  bool shrink = true;
  std::string corpus_dir;     ///< write shrunk repros here (empty: keep in-memory only)
  std::string disable_rule;   ///< planted-bug mode: oracle ignores this rule
};

struct FuzzStats {
  std::size_t iters = 0;
  std::size_t mutated = 0;        ///< iterations where a mutation applied
  std::size_t violating = 0;      ///< streams ending in an (agreed) violation
  std::size_t disagreements = 0;
  std::vector<CommandStream> repros;      ///< shrunk disagreeing streams
  std::vector<std::string> repro_paths;   ///< files written under corpus_dir
};

/// Runs the loop, logging deterministically to `log` (config header, one
/// block per disagreement, summary line). Same config => identical bytes.
FuzzStats run_fuzz(const FuzzConfig& cfg, std::ostream& log);

}  // namespace rh::verify
