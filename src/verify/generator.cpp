#include "verify/generator.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "verify/oracle.hpp"

namespace rh::verify {

namespace {

/// Traffic mix weights; ACT-heavy like a hammer workload.
struct OpWeight {
  Op op;
  std::uint64_t weight;
};

constexpr OpWeight kWeights[] = {
    {Op::kAct, 5}, {Op::kPre, 3}, {Op::kRead, 3}, {Op::kWrite, 3}, {Op::kRef, 1}, {Op::kPreAll, 1},
};

[[nodiscard]] std::uint32_t pick_bank(common::Xoshiro256& rng, const TimingOracle& oracle,
                                      bool want_open) {
  std::vector<std::uint32_t> candidates;
  for (std::uint32_t b = 0; b < oracle.bank_count(); ++b) {
    if (oracle.bank_open(b) == want_open) candidates.push_back(b);
  }
  RH_EXPECTS(!candidates.empty());
  return candidates[rng.below(candidates.size())];
}

}  // namespace

CommandStream generate_valid(common::Xoshiro256& rng, const GenConfig& cfg) {
  TimingOracle oracle(cfg.timings, cfg.banks, cfg.disabled_rule);
  CommandStream out;
  out.reserve(cfg.max_cmds);
  hbm::Cycle cursor = 0;

  while (out.size() < cfg.max_cmds) {
    // Feasible ops under the current open/closed state.
    bool any_open = false;
    bool any_closed = false;
    for (std::uint32_t b = 0; b < cfg.banks; ++b) {
      (oracle.bank_open(b) ? any_open : any_closed) = true;
    }
    std::uint64_t total = 0;
    for (const auto& w : kWeights) {
      const bool feasible = (w.op == Op::kAct && any_closed) ||
                            ((w.op == Op::kPre || w.op == Op::kRead || w.op == Op::kWrite) &&
                             any_open) ||
                            (w.op == Op::kRef && !any_open) || w.op == Op::kPreAll;
      if (feasible) total += w.weight;
    }
    std::uint64_t r = rng.below(total);
    Op op = Op::kPreAll;
    for (const auto& w : kWeights) {
      const bool feasible = (w.op == Op::kAct && any_closed) ||
                            ((w.op == Op::kPre || w.op == Op::kRead || w.op == Op::kWrite) &&
                             any_open) ||
                            (w.op == Op::kRef && !any_open) || w.op == Op::kPreAll;
      if (!feasible) continue;
      if (r < w.weight) {
        op = w.op;
        break;
      }
      r -= w.weight;
    }

    Command cmd;
    cmd.op = op;
    if (op == Op::kAct) {
      cmd.bank = pick_bank(rng, oracle, /*want_open=*/false);
      cmd.arg = static_cast<std::uint32_t>(rng.below(cfg.rows));
    } else if (op == Op::kPre || op == Op::kRead || op == Op::kWrite) {
      cmd.bank = pick_bank(rng, oracle, /*want_open=*/true);
      if (op != Op::kPre) cmd.arg = static_cast<std::uint32_t>(rng.below(cfg.cols));
    }

    const hbm::Cycle earliest = oracle.earliest_legal(op, cmd.bank);
    const hbm::Cycle floor = out.empty() ? 0 : cursor + 1;
    // Mostly tight schedules (rule edges), occasionally a long idle gap.
    const hbm::Cycle jitter = rng.below(8) == 0 ? rng.below(48) : rng.below(3);
    cmd.cycle = std::max(earliest, floor) + jitter;

    const Verdict v = oracle.step(cmd);
    RH_EXPECTS(v.ok());
    cursor = cmd.cycle;
    out.push_back(cmd);
  }
  return out;
}

std::string_view to_string(MutationKind kind) {
  switch (kind) {
    case MutationKind::kTighten: return "tighten";
    case MutationKind::kDupAct: return "dup-act";
    case MutationKind::kDropPre: return "drop-pre";
    case MutationKind::kRetargetBank: return "retarget-bank";
    case MutationKind::kEarlyRef: return "early-ref";
  }
  return "?";
}

namespace {

[[nodiscard]] bool apply_tighten(common::Xoshiro256& rng, CommandStream& s, const GenConfig& cfg) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::size_t i = rng.below(s.size());
    TimingOracle oracle(cfg.timings, cfg.banks, cfg.disabled_rule);
    bool prefix_ok = true;
    for (std::size_t k = 0; k < i; ++k) {
      if (!oracle.step(s[k]).ok()) {
        prefix_ok = false;
        break;
      }
    }
    if (!prefix_ok) continue;
    const hbm::Cycle earliest = oracle.earliest_legal(s[i].op, s[i].bank);
    if (earliest == 0 || s[i].cycle < earliest) continue;  // no gate to undercut
    s[i].cycle = earliest - 1;
    return true;
  }
  return false;
}

[[nodiscard]] bool apply_dup_act(common::Xoshiro256& rng, CommandStream& s, const GenConfig& cfg) {
  std::vector<std::size_t> acts;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i].op == Op::kAct) acts.push_back(i);
  }
  if (acts.empty()) return false;
  const std::size_t i = acts[rng.below(acts.size())];
  Command dup = s[i];
  dup.cycle += 1 + rng.below(std::max<hbm::Cycle>(1, cfg.timings.tRRD));
  s.insert(s.begin() + static_cast<std::ptrdiff_t>(i) + 1, dup);
  return true;
}

[[nodiscard]] bool apply_drop_pre(common::Xoshiro256& rng, CommandStream& s) {
  std::vector<std::size_t> pres;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i].op == Op::kPre || s[i].op == Op::kPreAll) pres.push_back(i);
  }
  if (pres.empty()) return false;
  s.erase(s.begin() + static_cast<std::ptrdiff_t>(pres[rng.below(pres.size())]));
  return true;
}

[[nodiscard]] bool apply_retarget(common::Xoshiro256& rng, CommandStream& s,
                                  const GenConfig& cfg) {
  if (cfg.banks < 2) return false;
  std::vector<std::size_t> banked;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const Op op = s[i].op;
    if (op == Op::kAct || op == Op::kPre || op == Op::kRead || op == Op::kWrite) banked.push_back(i);
  }
  if (banked.empty()) return false;
  const std::size_t i = banked[rng.below(banked.size())];
  const auto shift = 1 + static_cast<std::uint32_t>(rng.below(cfg.banks - 1));
  s[i].bank = (s[i].bank + shift) % cfg.banks;
  return true;
}

[[nodiscard]] bool apply_early_ref(common::Xoshiro256& rng, CommandStream& s) {
  const std::size_t i = rng.below(s.size());
  Command ref;
  ref.op = Op::kRef;
  ref.cycle = s[i].cycle + 1;
  s.insert(s.begin() + static_cast<std::ptrdiff_t>(i) + 1, ref);
  return true;
}

}  // namespace

std::optional<MutationKind> mutate_stream(common::Xoshiro256& rng, CommandStream& s,
                                          const GenConfig& cfg) {
  if (s.empty()) return std::nullopt;
  const auto first = static_cast<std::uint8_t>(rng.below(5));
  for (std::uint8_t delta = 0; delta < 5; ++delta) {
    const auto kind = static_cast<MutationKind>((first + delta) % 5);
    bool applied = false;
    switch (kind) {
      case MutationKind::kTighten: applied = apply_tighten(rng, s, cfg); break;
      case MutationKind::kDupAct: applied = apply_dup_act(rng, s, cfg); break;
      case MutationKind::kDropPre: applied = apply_drop_pre(rng, s); break;
      case MutationKind::kRetargetBank: applied = apply_retarget(rng, s, cfg); break;
      case MutationKind::kEarlyRef: applied = apply_early_ref(rng, s); break;
    }
    if (applied) return kind;
  }
  return std::nullopt;
}

}  // namespace rh::verify
