// The fuzzer's command vocabulary and its on-disk text format (.rhcs).
//
// A stream is the raw material of differential verification: an ordered
// list of interface commands with absolute issue cycles, replayed through
// both the production timing checkers and the independent oracle. The text
// format is deliberately line-oriented and diff-friendly so shrunk
// counterexamples commit cleanly into tests/corpus/:
//
//   # rh-command-stream/v1
//   ! banks 4                    <- optional overrides ('!' directives)
//   ! timing tFAW 24
//   0 ACT 0 5                    <- <cycle> <OP> [bank] [row|col]
//   4 ACT 1 9
//   30 PRE 0
//   60 PREA
//   200 REF
//   ! expect timing tRP 3        <- declared final verdict (kind rule index)
//
// The optional `! expect` directive pins the stream's final verdict so a
// corpus replay fails loudly if a rule change silently alters what a
// committed repro exercises.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hbm/timing.hpp"
#include "verify/verdict.hpp"

namespace rh::verify {

enum class Op : std::uint8_t { kAct, kPre, kPreAll, kRead, kWrite, kRef };

[[nodiscard]] std::string_view to_string(Op op);

struct Command {
  hbm::Cycle cycle = 0;
  Op op = Op::kAct;
  std::uint32_t bank = 0;
  std::uint32_t arg = 0;  ///< row for ACT, column for RD/WR, unused otherwise
};

using CommandStream = std::vector<Command>;

/// Final verdict a corpus file declares via `! expect`.
struct Expectation {
  Verdict verdict;
  std::size_t index = 0;  ///< command index the verdict lands on
};

/// One parsed .rhcs file: the commands plus any directive overrides.
struct StreamFile {
  CommandStream commands;
  hbm::TimingParams timings{};
  std::uint32_t banks = 16;
  std::optional<Expectation> expect;
};

/// Parses .rhcs text. Throws common::ConfigError naming `what` and the
/// offending line on malformed input or out-of-range bank indices.
[[nodiscard]] StreamFile parse_stream(std::string_view text, const std::string& what);

/// Loads and parses a .rhcs file. Throws common::ConfigError on I/O errors.
[[nodiscard]] StreamFile load_stream_file(const std::string& path);

/// Renders the command lines only (no directives), one per line.
[[nodiscard]] std::string format_stream(const CommandStream& commands);

/// Renders a complete .rhcs document: header comment, any `comment` lines
/// (each prefixed with "# "), directives for every parameter that differs
/// from the defaults, and the commands. parse_stream round-trips it.
[[nodiscard]] std::string format_stream_file(const CommandStream& commands,
                                             const hbm::TimingParams& timings, std::uint32_t banks,
                                             const std::vector<std::string>& comments = {});

}  // namespace rh::verify
