// The independent JEDEC timing oracle.
//
// A second, table-driven implementation of the inter-command timing rules,
// written against the rule definitions (JESD235-class scopes) rather than
// against hbm::TimingChecker's code, so the two can disagree. For every
// command the oracle builds an ordered table of *gates* — per-rule
// (enabled, not-before-cycle) entries plus protocol-state entries — and
// the first violated gate is the verdict. The gate order is the documented
// check-order contract both implementations follow (see DESIGN.md §11):
//
//   ACT   tRFC  tRRD  tRRD_L  tFAW  [act-open]  tRC  tRP
//   PRE   tRFC  [pre-closed]  tRAS  tWR  tRTP
//   PREA  tRFC  then per *open* bank in index order: tRAS tWR tRTP
//   RD    tRFC  tCCD  tWTR  [rd-closed]  tRCD
//   WR    tRFC  tCCD  [wr-closed]  tRCD
//   REF   [ref-open]  tRFC
//
// tREFI is a scheduling cadence, not a prohibition — neither implementation
// rejects late refreshes; the generator issues REF at roughly that cadence
// instead.
//
// A single rule can be disabled by name (`disabled_rule`). That is the
// harness's planted-bug mode: with, say, tFAW ignored, generated streams
// stop respecting it, the production checker objects, and the differential
// loop must catch and shrink the disagreement — proving the harness would
// notice a real rule regression.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "hbm/timing.hpp"
#include "verify/command_stream.hpp"
#include "verify/verdict.hpp"

namespace rh::verify {

class TimingOracle {
public:
  TimingOracle(const hbm::TimingParams& timings, std::uint32_t banks,
               std::string disabled_rule = {});

  /// Verdict for issuing `c` in the current state. Does not mutate state.
  [[nodiscard]] Verdict check(const Command& c) const;

  /// check(), then applies the command's state transition when legal.
  /// State is untouched on a violation (stop-at-first-violation replay).
  Verdict step(const Command& c);

  /// Earliest cycle at which (op, bank) clears every enabled timing gate.
  /// Protocol feasibility is a separate question — see protocol_ok().
  [[nodiscard]] hbm::Cycle earliest_legal(Op op, std::uint32_t bank) const;

  /// True if (op, bank) is legal protocol-wise (open/closed row state).
  [[nodiscard]] bool protocol_ok(Op op, std::uint32_t bank) const;

  [[nodiscard]] bool bank_open(std::uint32_t bank) const { return banks_[bank].open; }
  [[nodiscard]] std::uint32_t bank_count() const { return static_cast<std::uint32_t>(banks_.size()); }

  void reset();

private:
  struct Gate {
    Verdict::Kind kind = Verdict::Kind::kTiming;
    const char* tag = "";
    bool enabled = false;          ///< rule applies given history / row state
    hbm::Cycle not_before = 0;     ///< timing gates only
  };

  struct BankState {
    bool open = false;
    std::uint32_t open_row = 0;
    hbm::Cycle last_act = 0;
    hbm::Cycle last_pre = 0;
    hbm::Cycle last_rd = 0;
    hbm::Cycle last_wr = 0;
    bool ever_act = false;
    bool ever_pre = false;
    bool ever_rd = false;
    bool ever_wr = false;
  };

  struct BusState {
    hbm::Cycle last_act = 0;
    hbm::Cycle last_col = 0;
    hbm::Cycle last_wr = 0;
    hbm::Cycle ref_done = 0;
    bool ever_act = false;
    bool ever_col = false;
    bool ever_wr = false;
    std::vector<hbm::Cycle> group_last_act;
    std::vector<bool> group_ever_act;
    std::array<hbm::Cycle, 4> faw{};
    std::uint64_t faw_count = 0;
  };

  /// Builds the ordered gate table for `c` into `out`.
  void gates_for(const Command& c, std::vector<Gate>& out) const;
  void apply(const Command& c);
  [[nodiscard]] std::uint32_t group_of(std::uint32_t bank) const;

  hbm::TimingParams t_;
  std::string disabled_;
  std::vector<BankState> banks_;
  BusState bus_;
};

}  // namespace rh::verify
