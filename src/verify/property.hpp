// Reusable seeded properties with counterexample reporting.
//
// A Property is a named predicate run over N independently-seeded cases;
// the body returns nullopt on success or a human-readable counterexample
// string on failure. Case RNGs derive from hash_coords(seed, case_index),
// so a failing case index is enough to reproduce it in isolation:
//
//   Property p("scramble round-trips", [](common::Xoshiro256& rng) {
//     ... return std::optional<std::string>{} or "row 17: got 19";
//   });
//   auto outcome = p.run(seed, 500);
//
// The differential suites (oracle agreement, campaign identities, ECC and
// scramble invariants) are all expressed this way so failures print a
// uniform "<name> case <i>: <counterexample>" line.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace rh::verify {

struct PropertyOutcome {
  std::string name;
  std::size_t cases = 0;
  bool passed = true;
  std::size_t failing_case = 0;     ///< valid when !passed
  std::string counterexample;       ///< valid when !passed
};

class Property {
public:
  using Body = std::function<std::optional<std::string>(common::Xoshiro256&)>;

  Property(std::string name, Body body) : name_(std::move(name)), body_(std::move(body)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Runs `cases` seeded cases; stops at the first counterexample.
  [[nodiscard]] PropertyOutcome run(std::uint64_t seed, std::size_t cases) const;

private:
  std::string name_;
  Body body_;
};

/// Runs every property, logging one line each; false if any failed.
bool check_properties(const std::vector<Property>& properties, std::uint64_t seed,
                      std::size_t cases, std::ostream& log);

}  // namespace rh::verify
