#include "verify/property.hpp"

#include <ostream>

namespace rh::verify {

PropertyOutcome Property::run(std::uint64_t seed, std::size_t cases) const {
  PropertyOutcome outcome;
  outcome.name = name_;
  outcome.cases = cases;
  for (std::size_t i = 0; i < cases; ++i) {
    common::Xoshiro256 rng(common::hash_coords(seed, i));
    if (auto counterexample = body_(rng)) {
      outcome.passed = false;
      outcome.failing_case = i;
      outcome.counterexample = std::move(*counterexample);
      break;
    }
  }
  return outcome;
}

bool check_properties(const std::vector<Property>& properties, std::uint64_t seed,
                      std::size_t cases, std::ostream& log) {
  bool all_passed = true;
  for (const auto& p : properties) {
    const auto outcome = p.run(seed, cases);
    if (outcome.passed) {
      log << "PASS " << outcome.name << " (" << outcome.cases << " cases)\n";
    } else {
      all_passed = false;
      log << "FAIL " << outcome.name << " case " << outcome.failing_case << ": "
          << outcome.counterexample << '\n';
    }
  }
  return all_passed;
}

}  // namespace rh::verify
