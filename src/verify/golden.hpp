// Golden-contract schema pinning.
//
// Consumers of our on-disk documents (scripts/check_perf.py, rh_report
// --journal, external dashboards) bind to field *names, order, and types*
// — not values. json_shape() reduces a document to exactly that: one
// "<path> <kind>" line per node, member order preserved (the JSON reader
// keeps it), array element shape taken from the first element under a
// "[]" path segment. The shape of a schema is stable across seeds and
// machines even though the values are not, so it can be committed as a
// golden file and compared byte-for-byte.
//
// check_golden() compares an actual shape against the committed file and
// renders a first-difference diff on mismatch. Setting RH_UPDATE_GOLDEN=1
// in the environment rewrites the golden instead — the explicit
// "yes, I am changing the schema on purpose" step.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/record_io.hpp"

namespace rh::verify {

/// One "<path> <kind>" line per JSON node, in document order.
[[nodiscard]] std::vector<std::string> json_shape(const campaign::JsonValue& value);

/// Parses `json` (error messages name `what`) and returns its shape as one
/// newline-joined string with a trailing newline.
[[nodiscard]] std::string shape_text(std::string_view json, const std::string& what);

/// Compares `actual_shape` to the golden file. Returns nullopt on match;
/// otherwise a diff naming the first divergent line. With RH_UPDATE_GOLDEN
/// set, (re)writes the golden file and matches.
[[nodiscard]] std::optional<std::string> check_golden(const std::string& golden_path,
                                                      const std::string& actual_shape);

}  // namespace rh::verify
