// Greedy delta-debugging (ddmin-style) shrinking of failing command
// streams: repeatedly try removing chunks, keep any removal that still
// fails the predicate, and halve the chunk size until single-command
// granularity is exhausted. Deterministic — no randomness — so the same
// failing input always shrinks to the same minimal repro.
#pragma once

#include <functional>

#include "verify/command_stream.hpp"

namespace rh::verify {

/// Returns true when the (candidate) stream still exhibits the failure.
using FailPredicate = std::function<bool(const CommandStream&)>;

/// Shrinks `failing` (which must satisfy the predicate) to a locally
/// minimal subsequence that still does.
[[nodiscard]] CommandStream shrink_stream(CommandStream failing, const FailPredicate& still_fails);

}  // namespace rh::verify
