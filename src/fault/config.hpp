// Fault-model configuration: every physical constant of the simulated HBM2
// stack's failure behaviour, with the calibration rationale for each.
//
// The model is *mechanistic*: the paper's observations (channel grouping,
// subarray periodicity, weak last subarray, data-pattern dependence, TRR
// period) are not painted onto the outputs — they emerge from these
// parameters through the flip rule in rowhammer_model.hpp. EXPERIMENTS.md
// records the calibration targets (paper values) next to measured results.
#pragma once

#include <array>
#include <cstdint>

namespace rh::fault {

struct FaultConfig {
  /// Master seed; all per-cell randomness is a pure function of this.
  std::uint64_t seed = 0x5AFA2123ULL;

  // --- RowHammer threshold distribution -------------------------------
  /// Median per-cell RowHammer threshold (units: weighted aggressor
  /// activations, i.e. ~2x the paper's "hammer" count for double-sided
  /// patterns) on the least vulnerable die with unit coupling/row factors.
  /// Together with sigma_cell this places the chip-minimum HC_first near the
  /// paper's 14531 hammers and channel-0 mean HC_first near 58 K (Fig. 4).
  double hc0 = 2.95e7;
  /// Lognormal sigma of per-cell thresholds. Controls how BER grows with
  /// hammer count past HC_first; calibrated so 256 K hammers yield percent-
  /// scale BER (Fig. 3) while min HC_first stays ~14.5 K.
  double sigma_cell = 1.8;
  /// Per-row lognormal jitter of vulnerability (row-to-row scatter within a
  /// subarray, visible as noise in Fig. 5).
  double sigma_row = 0.10;
  /// Per-bank lognormal jitter (Fig. 6: small bank-level spread, dominated
  /// by channel-level spread).
  double sigma_bank = 0.04;

  // --- Process variation across dies / channels -----------------------
  /// Vulnerability multiplier per die (4 dies, channels {2d, 2d+1} on die d).
  /// Ordered so channels 6-7 are most vulnerable (paper Figs. 3-4) with a
  /// WCDP BER ratio ch7:ch0 near 2x.
  std::array<double, 4> die_factor{1.00, 1.09, 1.22, 1.53};
  /// Per-channel lognormal jitter on top of the die factor (separates the
  /// two channels of one die slightly, as the paper's shaded pairs show).
  double sigma_channel = 0.03;

  // --- Position within the subarray ------------------------------------
  /// Vulnerability factor at the subarray edge (next to the sense amps).
  double position_base = 0.75;
  /// Extra factor at mid-subarray; the profile is parabolic:
  ///   f(x) = position_base + position_amp * 4x(1-x),  x = relative position.
  /// Produces Fig. 5's periodic rise/fall across each subarray.
  double position_amp = 0.40;
  /// Multiplier for rows in the bank's last subarray (paper's SA Z next to
  /// the shared I/O circuitry: "significantly fewer bitflips").
  double last_subarray_factor = 0.18;

  // --- Data-pattern coupling -------------------------------------------
  /// Fraction of cells in the "anti" orientation (charged state stores 0).
  /// >0.5 makes all-zero victims (Rowstripe0) more vulnerable than all-one
  /// victims (Rowstripe1), reproducing Fig. 4's RS0 < RS1 HC_first asymmetry.
  double anti_cell_fraction = 0.62;
  /// Base coupling of a charged victim cell regardless of aggressor data.
  double coupling_base = 0.35;
  /// Additional coupling per adjacent aggressor whose stored bit differs
  /// from the victim bit (wordline-to-wordline coupling, classic RH
  /// data-pattern dependence).
  double coupling_opposite_aggressor = 0.325;
  /// Residual coupling of a *discharged* victim cell (rare opposite-
  /// direction flips).
  double coupling_discharged = 0.02;
  /// Relative strength of anti-cell flips vs true-cell flips (>1: charge
  /// loss in anti cells, i.e. 0->1-direction disturbance of stored zeros,
  /// dominates on this chip; drives the RS0-vs-RS1 HC_first asymmetry).
  double anti_cell_relative = 1.6;
  /// Multiplier when a victim bit's same-row neighbours store the opposite
  /// value (checkered patterns): bitline-neighbour charge sharing slightly
  /// weakens wordline coupling, making Checkered BER < Rowstripe BER at the
  /// same charged fraction (paper: ch7 max BER 3.13% RS1 vs 2.04% Ck0).
  double intra_row_opposite_factor = 0.55;

  // --- Blast radius ------------------------------------------------------
  /// Disturbance weight at physical distance 1 (immediate neighbour).
  double distance1_weight = 1.0;
  /// Disturbance weight at physical distance 2.
  double distance2_weight = 0.015;

  // --- RowPress (aggressor on-time) extension ---------------------------
  /// Disturbance multiplier grows with aggressor-row on-time tON:
  ///   press(tON) = 1 + press_coeff * ln(1 + (tON - tRAS)/tRAS) for tON>tRAS.
  double press_coeff = 0.85;

  // --- Retention ---------------------------------------------------------
  /// Median per-cell retention time at 85 degC, seconds. The weak tail
  /// (lognormal) puts per-row minimum retention in the 50 ms - 1 s range
  /// used by the U-TRR side channel (paper Sec. 5).
  double retention_median_s = 2.5;
  /// Lognormal sigma of per-cell retention.
  double retention_sigma = 1.1;
  /// Retention halves every `retention_temp_step_c` degC of heating.
  double retention_temp_step_c = 10.0;
  /// Reference temperature for retention_median_s.
  double retention_ref_temp_c = 85.0;
  /// Mild RowHammer temperature sensitivity: vulnerability multiplier per
  /// +10 degC relative to 85 degC (ablation A2).
  double rh_temp_coeff_per_10c = 0.06;
};

}  // namespace rh::fault
