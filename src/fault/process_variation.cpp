#include "fault/process_variation.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "fault/cell_traits.hpp"

namespace rh::fault {

ProcessVariation::ProcessVariation(const FaultConfig& cfg, const hbm::Geometry& geometry)
    : cfg_(cfg), geometry_(geometry) {
  geometry_.validate();
  RH_EXPECTS(geometry_.dies <= cfg_.die_factor.size());

  channel_factor_.resize(geometry_.channels);
  for (std::uint32_t ch = 0; ch < geometry_.channels; ++ch) {
    const std::uint32_t die = geometry_.die_of_channel(ch);
    const std::uint64_t h =
        common::hash_coords(stream_seed(cfg_.seed, Stream::kChannelJitter), ch);
    const double jitter = std::exp(cfg_.sigma_channel * common::approx_normal(h));
    channel_factor_[ch] = cfg_.die_factor[die] * jitter;
  }

  bank_factor_.resize(geometry_.total_banks());
  for (std::uint32_t ch = 0; ch < geometry_.channels; ++ch) {
    for (std::uint32_t pc = 0; pc < geometry_.pseudo_channels_per_channel; ++pc) {
      for (std::uint32_t bank = 0; bank < geometry_.banks_per_pseudo_channel; ++bank) {
        const hbm::BankAddress addr{ch, pc, bank};
        const std::uint32_t flat = addr.flat_index(geometry_);
        const std::uint64_t h =
            common::hash_coords(stream_seed(cfg_.seed, Stream::kBankJitter), flat);
        const double jitter = std::exp(cfg_.sigma_bank * common::approx_normal(h));
        bank_factor_[flat] = channel_factor_[ch] * jitter;
      }
    }
  }
}

double ProcessVariation::bank_factor(const BankContext& b) const {
  RH_EXPECTS(b.flat_bank < bank_factor_.size());
  return bank_factor_[b.flat_bank];
}

double ProcessVariation::channel_factor(std::uint32_t channel) const {
  RH_EXPECTS(channel < channel_factor_.size());
  return channel_factor_[channel];
}

double ProcessVariation::row_jitter(const BankContext& b, std::uint32_t physical_row) const {
  const std::uint64_t h =
      common::hash_coords(stream_seed(cfg_.seed, Stream::kRowJitter), b.flat_bank, physical_row);
  return std::exp(cfg_.sigma_row * common::approx_normal(h));
}

}  // namespace rh::fault
