// The RowHammer flip rule.
//
// Every cell owns a lognormal disturbance threshold
//     T(cell) = hc0 * exp(sigma_cell * z(cell))
// addressed statelessly by hash. A victim bit flips when its accumulated
// *effective* disturbance exceeds the threshold:
//     D * coupling(bit) * position(row) * variation(bank,row) * temp >= T
// evaluated in the log domain so the 8192-bit row scan needs one hash and a
// compare per bit (no transcendental math on the per-bit path).
//
//   D          — weighted aggressor activation count accumulated by the bank
//                (distance-1 weight 1.0, distance-2 weight ~0.015, RowPress
//                on-time multiplier), reset whenever the row is refreshed.
//   coupling   — data-dependent: charged cells (true cell storing 1 / anti
//                cell storing 0) couple strongly, each opposite-valued
//                adjacent aggressor bit adds coupling, opposite-valued
//                same-row neighbour bits damp it slightly; discharged cells
//                keep a small residual (opposite-direction flips).
//   position   — parabolic in the row's position within its subarray, with a
//                strong attenuation in the bank's last subarray (Fig. 5).
//   variation  — die x channel x bank x row process factors (Figs. 3, 4, 6).
//
// Flips are *materialized*: the caller passes the stored row image and we
// flip bits in place, exactly like a sense amplifier restoring corrupted
// charge. A flipped cell is subsequently discharged, so re-evaluating with
// more disturbance never flips it back.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>

#include "fault/config.hpp"
#include "fault/context.hpp"
#include "fault/process_variation.hpp"
#include "hbm/geometry.hpp"
#include "hbm/subarray.hpp"

namespace rh::fault {

class RowFaultCache;

class RowHammerModel {
public:
  RowHammerModel(const FaultConfig& cfg, const hbm::Geometry& geometry,
                 const hbm::SubarrayLayout& layout, const ProcessVariation& variation);
  ~RowHammerModel();

  /// Combined multiplicative vulnerability of (bank, physical row) at the
  /// given temperature: position x last-subarray x process factors.
  [[nodiscard]] double row_vulnerability(const BankContext& b, std::uint32_t physical_row,
                                         double temperature_c) const;

  /// Applies RowHammer bitflips to `data` (the stored row image) in place.
  /// `above` / `below` are the stored images of physical rows row-1 / row+1;
  /// pass an empty span when a neighbour does not exist (bank edge), which is
  /// treated as "same data as the victim" (no opposite-aggressor boost).
  /// Returns the number of bits flipped by *this* call.
  std::size_t apply(const BankContext& b, std::uint32_t physical_row, std::span<std::uint8_t> data,
                    std::span<const std::uint8_t> above, std::span<const std::uint8_t> below,
                    double disturbance, double temperature_c) const;

  /// A conservative lower bound on the disturbance needed to flip any bit
  /// anywhere in the device: below this, apply() is guaranteed to be a
  /// no-op, so callers can skip the row scan. Used on the per-ACT hot path.
  [[nodiscard]] double global_min_disturbance() const { return global_min_disturbance_; }

  /// Temperature multiplier on vulnerability (mild; ablation A2).
  [[nodiscard]] double temperature_factor(double temperature_c) const;

  /// Selects the fast kernel: per-(bank,row) cell thresholds (z, orientation)
  /// are hashed once, sorted by threshold, and cached, so apply() evaluates
  /// only the candidate bits whose z can possibly clear the batch's weakest
  /// threshold class instead of rescanning all 8192 bits. Bit-for-bit
  /// identical to the reference scan (the thresholds are the same hashes;
  /// candidate selection is a conservative superset). Off by default — the
  /// interp engine keeps the reference scan as ground truth.
  void set_fast_kernel(bool enabled);
  [[nodiscard]] bool fast_kernel() const { return cache_ != nullptr; }

  [[nodiscard]] const FaultConfig& config() const { return cfg_; }
  [[nodiscard]] const hbm::SubarrayLayout& layout() const { return layout_; }

private:
  FaultConfig cfg_;
  hbm::Geometry geometry_;
  hbm::SubarrayLayout layout_;
  const ProcessVariation* variation_;  // non-owning; outlives the model
  double ln_hc0_ = 0.0;
  double global_min_disturbance_ = 0.0;
  /// log(coupling) per [charged][opposite-aggressor count][intra][anti]
  /// threshold class. Pure config; hoisted out of apply() so the per-batch
  /// z-table build is 24 adds instead of 24 logarithms.
  std::array<std::array<std::array<std::array<double, 2>, 2>, 3>, 2> ln_coupling_{};
  /// Present iff the fast kernel is selected. mutable: the cache memoizes
  /// pure per-cell hashes, so filling it does not change observable state.
  mutable std::unique_ptr<RowFaultCache> cache_;
};

}  // namespace rh::fault
