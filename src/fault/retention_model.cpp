#include "fault/retention_model.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "fault/cell_traits.hpp"

namespace rh::fault {

namespace {
constexpr double kZMin = -3.4641016151377544;
}

RetentionModel::RetentionModel(const FaultConfig& cfg, const hbm::Geometry& geometry)
    : cfg_(cfg), geometry_(geometry) {
  RH_EXPECTS(cfg_.retention_median_s > 0 && cfg_.retention_sigma > 0);
}

double RetentionModel::temp_scale(double temperature_c) const {
  // Retention halves every +retention_temp_step_c above the reference.
  return std::exp2((cfg_.retention_ref_temp_c - temperature_c) / cfg_.retention_temp_step_c);
}

double RetentionModel::cell_retention_s(const BankContext& b, std::uint32_t physical_row,
                                        std::uint32_t bit, double temperature_c) const {
  const std::uint64_t h = cell_hash(cfg_.seed, Stream::kRetentionZ, b, physical_row, bit);
  return cfg_.retention_median_s * std::exp(cfg_.retention_sigma * common::approx_normal(h)) *
         temp_scale(temperature_c);
}

double RetentionModel::row_min_retention_s(const BankContext& b, std::uint32_t physical_row,
                                           double temperature_c) const {
  double best = cell_retention_s(b, physical_row, 0, temperature_c);
  const std::uint32_t bits = geometry_.row_bits();
  for (std::uint32_t bit = 1; bit < bits; ++bit) {
    best = std::min(best, cell_retention_s(b, physical_row, bit, temperature_c));
  }
  return best;
}

double RetentionModel::global_min_retention_s(double temperature_c) const {
  return cfg_.retention_median_s * std::exp(cfg_.retention_sigma * kZMin) *
         temp_scale(temperature_c);
}

std::size_t RetentionModel::apply(const BankContext& b, std::uint32_t physical_row,
                                  std::span<std::uint8_t> data, double elapsed_s,
                                  double temperature_c) const {
  RH_EXPECTS(data.size() == geometry_.row_bytes());
  if (elapsed_s <= 0.0) return 0;
  if (elapsed_s < global_min_retention_s(temperature_c)) return 0;

  // A charged cell decays iff elapsed > t(cell), i.e. z_ret(cell) < z_max.
  const double z_max =
      std::log(elapsed_s / (cfg_.retention_median_s * temp_scale(temperature_c))) /
      cfg_.retention_sigma;
  if (z_max < kZMin) return 0;

  const std::uint64_t z_base = common::hash_combine(
      common::hash_combine(stream_seed(cfg_.seed, Stream::kRetentionZ), b.flat_bank),
      physical_row);
  const std::uint64_t o_base = common::hash_combine(
      common::hash_combine(stream_seed(cfg_.seed, Stream::kOrientation), b.flat_bank),
      physical_row);

  std::size_t flips = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::uint8_t flipped = 0;
    for (std::uint32_t j = 0; j < 8; ++j) {
      const std::uint32_t bit = static_cast<std::uint32_t>(i) * 8 + j;
      const int vb = (data[i] >> j) & 1;
      const int anti =
          common::to_unit_double(common::hash_combine(o_base, bit)) < cfg_.anti_cell_fraction ? 1
                                                                                              : 0;
      const int charged = (vb == (anti != 0 ? 0 : 1)) ? 1 : 0;
      if (charged == 0) continue;
      const double z = common::approx_normal(common::hash_combine(z_base, bit));
      if (z < z_max) {
        flipped |= static_cast<std::uint8_t>(1u << j);
        ++flips;
      }
    }
    data[i] ^= flipped;
  }
  return flips;
}

}  // namespace rh::fault
