// Identifies the bank a fault-model evaluation applies to, carrying the
// pre-resolved die index so the hot path never re-derives it.
#pragma once

#include <cstdint>

#include "hbm/address.hpp"
#include "hbm/geometry.hpp"

namespace rh::fault {

struct BankContext {
  std::uint32_t channel = 0;
  std::uint32_t pseudo_channel = 0;
  std::uint32_t bank = 0;
  std::uint32_t die = 0;
  /// Flat bank index in [0, total_banks); namespaces per-cell hashes.
  std::uint32_t flat_bank = 0;

  static BankContext from(const hbm::Geometry& g, const hbm::BankAddress& a) {
    BankContext c;
    c.channel = a.channel;
    c.pseudo_channel = a.pseudo_channel;
    c.bank = a.bank;
    c.die = g.die_of_channel(a.channel);
    c.flat_bank = a.flat_index(g);
    return c;
  }
};

}  // namespace rh::fault
