// Per-cell immutable traits, derived statelessly from the master seed.
//
// Each DRAM cell owns:
//   - an orientation: "true cell" (charged state stores 1) or "anti cell"
//     (charged state stores 0). DRAM arrays mix both; which logical value is
//     vulnerable to charge loss depends on it, which is the root of the
//     data-pattern dependence the paper reports (Table 1 patterns).
//   - a standard-normal deviate z used by both the RowHammer threshold
//     (lognormal via exp(sigma*z)) and the retention model (separate hash
//     stream).
//
// Hash-stream separation: each consumer mixes a distinct stream constant into
// the seed so RowHammer thresholds, retention times, orientation, and default
// (power-on) data are mutually independent.
#pragma once

#include <cstdint>
#include <span>

#include "common/rng.hpp"
#include "fault/context.hpp"

namespace rh::fault {

/// Hash-stream discriminators.
enum class Stream : std::uint64_t {
  kOrientation = 0x0f1e2d3c4b5a6978ULL,
  kRowHammerZ = 0x1badb002deadbeefULL,
  kRetentionZ = 0x2c0ffee123456789ULL,
  kDefaultData = 0x3d15ea5e00c0ffeeULL,
  kRowJitter = 0x4a11ce0fba5eba11ULL,
  kBankJitter = 0x5ca1ab1e0ddba11eULL,
  kChannelJitter = 0x6eedfacecafef00dULL,
};

[[nodiscard]] inline std::uint64_t stream_seed(std::uint64_t master, Stream s) {
  return common::splitmix64(master ^ static_cast<std::uint64_t>(s));
}

/// Per-cell hash for (bank, physical row, bit) under stream `s`.
/// Derivation: chained combines over (stream seed, flat bank, row, bit) —
/// exactly the chain the models' per-row hash cursors use, so a trait
/// queried here matches what apply() used internally.
[[nodiscard]] inline std::uint64_t cell_hash(std::uint64_t master, Stream s, const BankContext& b,
                                             std::uint32_t physical_row, std::uint32_t bit) {
  return common::hash_combine(
      common::hash_combine(common::hash_combine(stream_seed(master, s), b.flat_bank),
                           physical_row),
      bit);
}

/// True if the cell is an anti cell (charged state stores logical 0).
[[nodiscard]] inline bool is_anti_cell(std::uint64_t master, const BankContext& b,
                                       std::uint32_t physical_row, std::uint32_t bit,
                                       double anti_fraction) {
  const std::uint64_t h = cell_hash(master, Stream::kOrientation, b, physical_row, bit);
  return common::to_unit_double(h) < anti_fraction;
}

/// The logical value this cell holds when charged (1 for true cells, 0 for
/// anti cells).
[[nodiscard]] inline int charged_value(std::uint64_t master, const BankContext& b,
                                       std::uint32_t physical_row, std::uint32_t bit,
                                       double anti_fraction) {
  return is_anti_cell(master, b, physical_row, bit, anti_fraction) ? 0 : 1;
}

/// Fills `out` with the row's power-on (never-written) content: fixed
/// pseudo-random bytes, deterministic in (seed, bank, row). Real DRAM
/// powers on with effectively random but stable data; experiments always
/// initialize rows before use, but neighbour rows fetched for coupling may
/// be unwritten.
inline void fill_default_data(std::uint64_t master, const BankContext& b,
                              std::uint32_t physical_row, std::span<std::uint8_t> out) {
  const std::uint64_t base = common::hash_combine(
      common::hash_combine(stream_seed(master, Stream::kDefaultData), b.flat_bank), physical_row);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(common::hash_combine(base, i) & 0xffu);
  }
}

}  // namespace rh::fault
