// Data-retention failure model.
//
// Each cell's retention time is lognormal with a weak tail,
//     t(cell) = retention_median_s * exp(retention_sigma * z_ret(cell)),
// and halves for every +retention_temp_step_c above the reference
// temperature. Only *charged* cells decay; a decayed cell reads as its
// discharged value (true cell 1->0, anti cell 0->1).
//
// This model serves two roles from the paper:
//   1. the methodology constraint that experiments finish within 27 ms so
//      retention failures never contaminate RowHammer results (§3.1), and
//   2. the U-TRR retention side channel used to expose the undisclosed TRR
//      mechanism (§5): a row is profiled for its retention time T, and
//      whether bitflips appear after T tells the host whether *anything*
//      (e.g. an in-DRAM TRR) refreshed the row in between.
#pragma once

#include <cstdint>
#include <span>

#include "fault/config.hpp"
#include "fault/context.hpp"
#include "hbm/geometry.hpp"

namespace rh::fault {

class RetentionModel {
public:
  RetentionModel(const FaultConfig& cfg, const hbm::Geometry& geometry);

  /// Applies retention decay to the stored row image after `elapsed_s`
  /// seconds without refresh at `temperature_c`. Returns bits flipped now.
  std::size_t apply(const BankContext& b, std::uint32_t physical_row,
                    std::span<std::uint8_t> data, double elapsed_s, double temperature_c) const;

  /// Retention time of one cell at `temperature_c`, in seconds.
  [[nodiscard]] double cell_retention_s(const BankContext& b, std::uint32_t physical_row,
                                        std::uint32_t bit, double temperature_c) const;

  /// Minimum retention time across a row's cells (the row's failure
  /// boundary T used by retention profiling), in seconds.
  [[nodiscard]] double row_min_retention_s(const BankContext& b, std::uint32_t physical_row,
                                           double temperature_c) const;

  /// Elapsed times below this can't decay any cell anywhere — fast-skip
  /// bound for the per-ACT hot path, in seconds at `temperature_c`.
  [[nodiscard]] double global_min_retention_s(double temperature_c) const;

  [[nodiscard]] const FaultConfig& config() const { return cfg_; }

private:
  [[nodiscard]] double temp_scale(double temperature_c) const;

  FaultConfig cfg_;
  hbm::Geometry geometry_;
};

}  // namespace rh::fault
