#include "fault/rowhammer_model.hpp"

#include <array>
#include <cmath>

#include "common/assert.hpp"
#include "fault/cell_traits.hpp"

namespace rh::fault {

namespace {

/// Irwin-Hall(4) approximate normals are bounded: |z| <= 2 * sqrt(3).
constexpr double kZMin = -3.4641016151377544;

/// Per-row hash cursor: folds (stream, bank, row) once, then derives each
/// bit's hash with a single combine. Keeps the per-bit path at ~two
/// SplitMix64 evaluations total (threshold z + orientation).
struct RowHashBase {
  std::uint64_t base;

  RowHashBase(std::uint64_t master, Stream s, const BankContext& b, std::uint32_t row)
      : base(common::hash_combine(
            common::hash_combine(stream_seed(master, s), b.flat_bank), row)) {}

  [[nodiscard]] std::uint64_t at(std::uint32_t bit) const {
    return common::hash_combine(base, bit);
  }
};

}  // namespace

RowHammerModel::RowHammerModel(const FaultConfig& cfg, const hbm::Geometry& geometry,
                               const hbm::SubarrayLayout& layout,
                               const ProcessVariation& variation)
    : cfg_(cfg), geometry_(geometry), layout_(layout), variation_(&variation) {
  RH_EXPECTS(cfg_.hc0 > 0 && cfg_.sigma_cell > 0);
  RH_EXPECTS(layout_.total_rows() == geometry_.rows_per_bank);
  ln_hc0_ = std::log(cfg_.hc0);

  // Conservative bound: the most vulnerable cell anywhere has z = kZMin,
  // max coupling, max position factor, and max process factor. Disturbance
  // below hc0 * exp(sigma*zmin) / (all maxed factors) cannot flip anything.
  double max_factor = 0.0;
  for (double f : cfg_.die_factor) max_factor = std::max(max_factor, f);
  max_factor *= std::exp(3.0 * cfg_.sigma_channel) * std::exp(3.0 * cfg_.sigma_bank) *
                std::exp(3.5 * cfg_.sigma_row);
  max_factor *= cfg_.position_base + cfg_.position_amp;
  max_factor *= 1.5;  // headroom for temperature
  const double max_coupling =
      (cfg_.coupling_base + 2.0 * cfg_.coupling_opposite_aggressor) * 1.0;
  global_min_disturbance_ =
      cfg_.hc0 * std::exp(cfg_.sigma_cell * kZMin) / (max_factor * max_coupling);
}

double RowHammerModel::temperature_factor(double temperature_c) const {
  return 1.0 + cfg_.rh_temp_coeff_per_10c * (temperature_c - 85.0) / 10.0;
}

double RowHammerModel::row_vulnerability(const BankContext& b, std::uint32_t physical_row,
                                         double temperature_c) const {
  const double x = layout_.relative_position(physical_row);
  double position = cfg_.position_base + cfg_.position_amp * 4.0 * x * (1.0 - x);
  if (layout_.in_last_subarray(physical_row)) position *= cfg_.last_subarray_factor;
  return position * variation_->bank_factor(b) * variation_->row_jitter(b, physical_row) *
         temperature_factor(temperature_c);
}

std::size_t RowHammerModel::apply(const BankContext& b, std::uint32_t physical_row,
                                  std::span<std::uint8_t> data,
                                  std::span<const std::uint8_t> above,
                                  std::span<const std::uint8_t> below, double disturbance,
                                  double temperature_c) const {
  RH_EXPECTS(data.size() == geometry_.row_bytes());
  RH_EXPECTS(above.empty() || above.size() == data.size());
  RH_EXPECTS(below.empty() || below.size() == data.size());
  if (disturbance <= 0.0) return 0;

  const double vuln = row_vulnerability(b, physical_row, temperature_c);
  const double ln_d = std::log(disturbance * vuln);

  // z-threshold lookup, indexed by [charged][opposite-aggressor count k]
  // [intra-row damped][anti cell]. A bit flips iff z(bit) <= table[...].
  // Precomputing the table keeps all logarithms off the per-bit path.
  std::array<std::array<std::array<std::array<double, 2>, 2>, 3>, 2> z_table{};
  for (int charged = 0; charged < 2; ++charged) {
    for (int k = 0; k < 3; ++k) {
      for (int intra = 0; intra < 2; ++intra) {
        for (int anti = 0; anti < 2; ++anti) {
          double coupling = charged != 0
                                ? cfg_.coupling_base + k * cfg_.coupling_opposite_aggressor
                                : cfg_.coupling_discharged;
          if (intra != 0) coupling *= cfg_.intra_row_opposite_factor;
          if (anti != 0) coupling *= cfg_.anti_cell_relative;
          z_table[static_cast<std::size_t>(charged)][static_cast<std::size_t>(k)]
                 [static_cast<std::size_t>(intra)][static_cast<std::size_t>(anti)] =
                     (ln_d + std::log(coupling) - ln_hc0_) / cfg_.sigma_cell;
        }
      }
    }
  }
  // Fast reject: even the weakest threshold class can't reach the strongest
  // cell's z -> nothing flips.
  if (z_table[1][2][0][0] < kZMin) return 0;

  const RowHashBase z_hash(cfg_.seed, Stream::kRowHammerZ, b, physical_row);
  const RowHashBase orient_hash(cfg_.seed, Stream::kOrientation, b, physical_row);

  std::size_t flips = 0;
  const std::size_t n = data.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t v = data[i];
    const std::uint8_t up = above.empty() ? v : above[i];
    const std::uint8_t dn = below.empty() ? v : below[i];
    // Same-row neighbour bits, including the cross-byte edges.
    const std::uint8_t prev_edge =
        i > 0 ? static_cast<std::uint8_t>((data[i - 1] >> 7) & 1u) : std::uint8_t{0xff};
    const std::uint8_t next_edge =
        i + 1 < n ? static_cast<std::uint8_t>(data[i + 1] & 1u) : std::uint8_t{0xff};

    std::uint8_t flipped = 0;
    for (std::uint32_t j = 0; j < 8; ++j) {
      const std::uint32_t bit = static_cast<std::uint32_t>(i) * 8 + j;
      const int vb = (v >> j) & 1;
      const int k = (((up >> j) & 1) != vb ? 1 : 0) + (((dn >> j) & 1) != vb ? 1 : 0);

      const int left = j > 0 ? ((v >> (j - 1)) & 1) : (prev_edge == 0xff ? vb : prev_edge);
      const int right = j < 7 ? ((v >> (j + 1)) & 1) : (next_edge == 0xff ? vb : next_edge);
      const int intra = (left != vb && right != vb) ? 1 : 0;

      const std::uint64_t ho = orient_hash.at(bit);
      const int anti = common::to_unit_double(ho) < cfg_.anti_cell_fraction ? 1 : 0;
      const int charged = (vb == (anti != 0 ? 0 : 1)) ? 1 : 0;

      const double zmax = z_table[static_cast<std::size_t>(charged)][static_cast<std::size_t>(k)]
                                 [static_cast<std::size_t>(intra)][static_cast<std::size_t>(anti)];
      if (zmax < kZMin) continue;
      const double z = common::approx_normal(z_hash.at(bit));
      if (z <= zmax) {
        flipped |= static_cast<std::uint8_t>(1u << j);
        ++flips;
      }
    }
    data[i] ^= flipped;
  }
  return flips;
}

}  // namespace rh::fault
