#include "fault/rowhammer_model.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "fault/cell_traits.hpp"

namespace rh::fault {

namespace {

/// Irwin-Hall(4) approximate normals are bounded: |z| <= 2 * sqrt(3).
constexpr double kZMin = -3.4641016151377544;

/// Per-row hash cursor: folds (stream, bank, row) once, then derives each
/// bit's hash with a single combine. Keeps the per-bit path at ~two
/// SplitMix64 evaluations total (threshold z + orientation).
struct RowHashBase {
  std::uint64_t base;

  RowHashBase(std::uint64_t master, Stream s, const BankContext& b, std::uint32_t row)
      : base(common::hash_combine(
            common::hash_combine(stream_seed(master, s), b.flat_bank), row)) {}

  [[nodiscard]] std::uint64_t at(std::uint32_t bit) const {
    return common::hash_combine(base, bit);
  }
};

}  // namespace

/// Fast-kernel memo: every cell's threshold z and orientation are pure
/// functions of (seed, flat bank, physical row, bit), so a row that settles
/// repeatedly (every probe of a hammer bisection re-senses the same victim)
/// can skip the 8192-bit rescan. Per row we keep only the *weak tail* —
/// cells with z <= kTierZ, the only ones a batch taking the cached path can
/// flip — in natural bit order with threshold and orientation per slot.
/// apply() walks the tail filtering on the batch's most permissive
/// threshold: bit order already matches the reference scan, so no sorting
/// happens anywhere, at build time or per batch. A batch whose threshold
/// exceeds kTierZ (extreme disturbance; absent from every bench workload)
/// takes the reference scan instead, so the cache never needs the strong
/// cells at all. Entries are evicted least-recently-used.
class RowFaultCache {
public:
  /// Weak-tail cut. A cached batch satisfies z_cap <= kTierZ, so every
  /// flippable cell (z <= z_cap) is in the tail; batches above the tier
  /// fall back to the reference scan. P(z <= -1) ~ 16% under the
  /// Irwin-Hall(4) normal, so the tail carries ~1/6 of the row's bits.
  static constexpr double kTierZ = -1.0;

  struct Entry {
    std::vector<std::uint16_t> tail_bit;  ///< weak-tail bit indices, ascending
    std::vector<double> tail_z;           ///< threshold z per tail slot
    std::vector<std::uint8_t> tail_anti;  ///< orientation per tail slot
    /// Weakest cell in the row; a batch with z_cap below it flips nothing.
    double z_min = 0.0;
    std::uint64_t last_use = 0;
  };

  const Entry& get(const FaultConfig& cfg, const hbm::Geometry& geometry, const BankContext& b,
                   std::uint32_t physical_row) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(b.flat_bank) << 32) | physical_row;
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      if (entries_.size() >= kMaxEntries) evict_lru();
      it = entries_.emplace(key, build(cfg, geometry, b, physical_row)).first;
    }
    it->second.last_use = ++tick_;
    return it->second;
  }

private:
  /// Weak-tail entries are ~15 KiB; 512 of them cover several shards'
  /// working sets (victims, aggressors, blast-radius neighbours) without
  /// LRU thrash — a fig4-style shard set touches ~140 distinct rows.
  static constexpr std::size_t kMaxEntries = 512;

  static Entry build(const FaultConfig& cfg, const hbm::Geometry& geometry, const BankContext& b,
                     std::uint32_t physical_row) {
    const RowHashBase z_hash(cfg.seed, Stream::kRowHammerZ, b, physical_row);
    const RowHashBase orient_hash(cfg.seed, Stream::kOrientation, b, physical_row);
    const auto bits = static_cast<std::uint32_t>(geometry.row_bytes() * 8);
    Entry e;
    e.z_min = 1e300;
    e.tail_bit.reserve(bits / 4);
    e.tail_z.reserve(bits / 4);
    e.tail_anti.reserve(bits / 4);
    // One pass in bit order; the orientation hash runs only for tail bits.
    for (std::uint32_t bit = 0; bit < bits; ++bit) {
      const double z = common::approx_normal(z_hash.at(bit));
      e.z_min = std::min(e.z_min, z);
      if (z <= kTierZ) {
        e.tail_bit.push_back(static_cast<std::uint16_t>(bit));
        e.tail_z.push_back(z);
        e.tail_anti.push_back(
            common::to_unit_double(orient_hash.at(bit)) < cfg.anti_cell_fraction ? 1 : 0);
      }
    }
    return e;
  }

  void evict_lru() {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    entries_.erase(victim);
  }

  std::unordered_map<std::uint64_t, Entry> entries_;
  std::uint64_t tick_ = 0;
};

RowHammerModel::~RowHammerModel() = default;

void RowHammerModel::set_fast_kernel(bool enabled) {
  if (enabled && cache_ == nullptr) {
    cache_ = std::make_unique<RowFaultCache>();
  } else if (!enabled) {
    cache_.reset();
  }
}

RowHammerModel::RowHammerModel(const FaultConfig& cfg, const hbm::Geometry& geometry,
                               const hbm::SubarrayLayout& layout,
                               const ProcessVariation& variation)
    : cfg_(cfg), geometry_(geometry), layout_(layout), variation_(&variation) {
  RH_EXPECTS(cfg_.hc0 > 0 && cfg_.sigma_cell > 0);
  RH_EXPECTS(layout_.total_rows() == geometry_.rows_per_bank);
  ln_hc0_ = std::log(cfg_.hc0);

  // Coupling depends only on config, so its logarithm is hoisted here;
  // apply() adds it to ln(disturbance * vulnerability) per threshold class.
  for (int charged = 0; charged < 2; ++charged) {
    for (int k = 0; k < 3; ++k) {
      for (int intra = 0; intra < 2; ++intra) {
        for (int anti = 0; anti < 2; ++anti) {
          double coupling = charged != 0
                                ? cfg_.coupling_base + k * cfg_.coupling_opposite_aggressor
                                : cfg_.coupling_discharged;
          if (intra != 0) coupling *= cfg_.intra_row_opposite_factor;
          if (anti != 0) coupling *= cfg_.anti_cell_relative;
          ln_coupling_[static_cast<std::size_t>(charged)][static_cast<std::size_t>(k)]
                      [static_cast<std::size_t>(intra)][static_cast<std::size_t>(anti)] =
                          std::log(coupling);
        }
      }
    }
  }

  // Conservative bound: the most vulnerable cell anywhere has z = kZMin,
  // max coupling, max position factor, and max process factor. Disturbance
  // below hc0 * exp(sigma*zmin) / (all maxed factors) cannot flip anything.
  double max_factor = 0.0;
  for (double f : cfg_.die_factor) max_factor = std::max(max_factor, f);
  max_factor *= std::exp(3.0 * cfg_.sigma_channel) * std::exp(3.0 * cfg_.sigma_bank) *
                std::exp(3.5 * cfg_.sigma_row);
  max_factor *= cfg_.position_base + cfg_.position_amp;
  max_factor *= 1.5;  // headroom for temperature
  const double max_coupling =
      (cfg_.coupling_base + 2.0 * cfg_.coupling_opposite_aggressor) * 1.0;
  global_min_disturbance_ =
      cfg_.hc0 * std::exp(cfg_.sigma_cell * kZMin) / (max_factor * max_coupling);
}

double RowHammerModel::temperature_factor(double temperature_c) const {
  return 1.0 + cfg_.rh_temp_coeff_per_10c * (temperature_c - 85.0) / 10.0;
}

double RowHammerModel::row_vulnerability(const BankContext& b, std::uint32_t physical_row,
                                         double temperature_c) const {
  const double x = layout_.relative_position(physical_row);
  double position = cfg_.position_base + cfg_.position_amp * 4.0 * x * (1.0 - x);
  if (layout_.in_last_subarray(physical_row)) position *= cfg_.last_subarray_factor;
  return position * variation_->bank_factor(b) * variation_->row_jitter(b, physical_row) *
         temperature_factor(temperature_c);
}

std::size_t RowHammerModel::apply(const BankContext& b, std::uint32_t physical_row,
                                  std::span<std::uint8_t> data,
                                  std::span<const std::uint8_t> above,
                                  std::span<const std::uint8_t> below, double disturbance,
                                  double temperature_c) const {
  RH_EXPECTS(data.size() == geometry_.row_bytes());
  RH_EXPECTS(above.empty() || above.size() == data.size());
  RH_EXPECTS(below.empty() || below.size() == data.size());
  if (disturbance <= 0.0) return 0;

  const double vuln = row_vulnerability(b, physical_row, temperature_c);
  const double ln_d = std::log(disturbance * vuln);

  // z-threshold lookup, indexed by [charged][opposite-aggressor count k]
  // [intra-row damped][anti cell]. A bit flips iff z(bit) <= table[...].
  // The per-class log(coupling) is precomputed at construction, so the
  // per-bit path — and this per-batch build — sees no logarithms beyond
  // ln_d above.
  std::array<std::array<std::array<std::array<double, 2>, 2>, 3>, 2> z_table{};
  for (int charged = 0; charged < 2; ++charged) {
    for (int k = 0; k < 3; ++k) {
      for (int intra = 0; intra < 2; ++intra) {
        for (int anti = 0; anti < 2; ++anti) {
          z_table[static_cast<std::size_t>(charged)][static_cast<std::size_t>(k)]
                 [static_cast<std::size_t>(intra)][static_cast<std::size_t>(anti)] =
                     (ln_d +
                      ln_coupling_[static_cast<std::size_t>(charged)][static_cast<std::size_t>(k)]
                                  [static_cast<std::size_t>(intra)][static_cast<std::size_t>(anti)] -
                      ln_hc0_) /
                     cfg_.sigma_cell;
        }
      }
    }
  }
  // Fast reject: even the weakest threshold class can't reach the strongest
  // cell's z -> nothing flips.
  if (z_table[1][2][0][0] < kZMin) return 0;

  const std::size_t n = data.size();
  std::size_t flips = 0;

  // Decides bit j of byte i exactly as the reference scan: the byte's value
  // pre-flip, aggressor bits from above/below, same-row neighbours with the
  // cross-byte edges (prev byte post-flip, next byte pre-flip), orientation
  // from `anti`. Returns true when the bit flips.
  const auto bit_flips = [&](std::size_t i, std::uint32_t j, std::uint8_t v, std::uint8_t up,
                             std::uint8_t dn, std::uint8_t prev_edge, std::uint8_t next_edge,
                             int anti, double z) {
    const int vb = (v >> j) & 1;
    const int k = (((up >> j) & 1) != vb ? 1 : 0) + (((dn >> j) & 1) != vb ? 1 : 0);
    const int left = j > 0 ? ((v >> (j - 1)) & 1) : (prev_edge == 0xff ? vb : prev_edge);
    const int right = j < 7 ? ((v >> (j + 1)) & 1) : (next_edge == 0xff ? vb : next_edge);
    const int intra = (left != vb && right != vb) ? 1 : 0;
    const int charged = (vb == (anti != 0 ? 0 : 1)) ? 1 : 0;
    const double zmax = z_table[static_cast<std::size_t>(charged)][static_cast<std::size_t>(k)]
                               [static_cast<std::size_t>(intra)][static_cast<std::size_t>(anti)];
    (void)i;
    return zmax >= kZMin && z <= zmax;
  };

  if (cache_ != nullptr) {
    double z_cap = kZMin;
    for (int charged = 0; charged < 2; ++charged) {
      for (int k = 0; k < 3; ++k) {
        for (int intra = 0; intra < 2; ++intra) {
          for (int anti = 0; anti < 2; ++anti) {
            z_cap = std::max(z_cap, z_table[static_cast<std::size_t>(charged)]
                                           [static_cast<std::size_t>(k)]
                                           [static_cast<std::size_t>(intra)]
                                           [static_cast<std::size_t>(anti)]);
          }
        }
      }
    }
    if (z_cap <= RowFaultCache::kTierZ) {
      // Fast kernel: only bits whose cached z clears the batch's most
      // permissive threshold class can flip; everything else is untouched,
      // so skipping it leaves bytes — and the cross-byte edges later bytes
      // read — exactly as the reference scan would. z_cap is within the
      // cached tier, so the weak tail holds every candidate, and it is
      // already in the reference scan's bit order.
      const RowFaultCache::Entry& entry = cache_->get(cfg_, geometry_, b, physical_row);
      if (z_cap < entry.z_min) return 0;
      const std::size_t m = entry.tail_bit.size();
      for (std::size_t s = 0; s < m;) {
        if (entry.tail_z[s] > z_cap) {
          ++s;
          continue;
        }
        const std::size_t i = static_cast<std::size_t>(entry.tail_bit[s]) >> 3;
        const std::uint8_t v = data[i];
        const std::uint8_t up = above.empty() ? v : above[i];
        const std::uint8_t dn = below.empty() ? v : below[i];
        const std::uint8_t prev_edge =
            i > 0 ? static_cast<std::uint8_t>((data[i - 1] >> 7) & 1u) : std::uint8_t{0xff};
        const std::uint8_t next_edge =
            i + 1 < n ? static_cast<std::uint8_t>(data[i + 1] & 1u) : std::uint8_t{0xff};
        std::uint8_t flipped = 0;
        for (; s < m && (static_cast<std::size_t>(entry.tail_bit[s]) >> 3) == i; ++s) {
          if (entry.tail_z[s] > z_cap) continue;
          const std::uint32_t j = entry.tail_bit[s] & 7u;
          if (bit_flips(i, j, v, up, dn, prev_edge, next_edge, entry.tail_anti[s],
                        entry.tail_z[s])) {
            flipped |= static_cast<std::uint8_t>(1u << j);
            ++flips;
          }
        }
        data[i] ^= flipped;
      }
      return flips;
    }
    // The batch's threshold class reaches above the cached tier: strong
    // cells could flip too, so take the reference scan below.
  }

  const RowHashBase z_hash(cfg_.seed, Stream::kRowHammerZ, b, physical_row);
  const RowHashBase orient_hash(cfg_.seed, Stream::kOrientation, b, physical_row);

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t v = data[i];
    const std::uint8_t up = above.empty() ? v : above[i];
    const std::uint8_t dn = below.empty() ? v : below[i];
    // Same-row neighbour bits, including the cross-byte edges.
    const std::uint8_t prev_edge =
        i > 0 ? static_cast<std::uint8_t>((data[i - 1] >> 7) & 1u) : std::uint8_t{0xff};
    const std::uint8_t next_edge =
        i + 1 < n ? static_cast<std::uint8_t>(data[i + 1] & 1u) : std::uint8_t{0xff};

    std::uint8_t flipped = 0;
    for (std::uint32_t j = 0; j < 8; ++j) {
      const std::uint32_t bit = static_cast<std::uint32_t>(i) * 8 + j;
      const int vb = (v >> j) & 1;
      const int k = (((up >> j) & 1) != vb ? 1 : 0) + (((dn >> j) & 1) != vb ? 1 : 0);

      const int left = j > 0 ? ((v >> (j - 1)) & 1) : (prev_edge == 0xff ? vb : prev_edge);
      const int right = j < 7 ? ((v >> (j + 1)) & 1) : (next_edge == 0xff ? vb : next_edge);
      const int intra = (left != vb && right != vb) ? 1 : 0;

      const std::uint64_t ho = orient_hash.at(bit);
      const int anti = common::to_unit_double(ho) < cfg_.anti_cell_fraction ? 1 : 0;
      const int charged = (vb == (anti != 0 ? 0 : 1)) ? 1 : 0;

      const double zmax = z_table[static_cast<std::size_t>(charged)][static_cast<std::size_t>(k)]
                                 [static_cast<std::size_t>(intra)][static_cast<std::size_t>(anti)];
      if (zmax < kZMin) continue;
      const double z = common::approx_normal(z_hash.at(bit));
      if (z <= zmax) {
        flipped |= static_cast<std::uint8_t>(1u << j);
        ++flips;
      }
    }
    data[i] ^= flipped;
  }
  return flips;
}

}  // namespace rh::fault
