// Manufacturing process variation: die-, channel-, bank-, and row-level
// vulnerability multipliers.
//
// The paper's Figs. 3-4 show channels behaving in pairs ("groups of two
// based on the number of bitflips"), which it attributes to channel pairs
// sharing 3D-stacked dies and to process variation across dies. We model
// exactly that hierarchy: a deterministic per-die factor, small lognormal
// per-channel and per-bank jitters, and a per-row jitter evaluated by the
// RowHammer model.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/config.hpp"
#include "fault/context.hpp"
#include "hbm/geometry.hpp"

namespace rh::fault {

class ProcessVariation {
public:
  ProcessVariation(const FaultConfig& cfg, const hbm::Geometry& geometry);

  /// Combined die x channel x bank vulnerability multiplier for a bank.
  /// >1 means more vulnerable (lower effective thresholds).
  [[nodiscard]] double bank_factor(const BankContext& b) const;

  /// Die x channel multiplier only (used for reporting).
  [[nodiscard]] double channel_factor(std::uint32_t channel) const;

  /// Per-row lognormal jitter, deterministic in (bank, physical row).
  [[nodiscard]] double row_jitter(const BankContext& b, std::uint32_t physical_row) const;

private:
  FaultConfig cfg_;
  hbm::Geometry geometry_;
  std::vector<double> channel_factor_;  // [channel]
  std::vector<double> bank_factor_;     // [flat bank]
};

}  // namespace rh::fault
