// Error hierarchy for recoverable failures (C++ Core Guidelines I.10: use
// exceptions to signal a failure to perform a required task).
//
// Layering:
//   Error                 — root of all library failures
//   ├─ ConfigError        — invalid device / experiment configuration
//   │  └─ CliError        — invalid command-line flag value
//   ├─ ProtocolError      — DRAM command illegal in current bank/device state
//   ├─ TimingError        — DRAM command violates a JEDEC-style timing rule
//   ├─ ProgramError       — malformed or diverging DRAM Bender program
//   ├─ StorageError       — durable write/sync to on-disk state failed
//   └─ TransientError     — infrastructure failures that a retry may heal
//      ├─ TransportError  — PCIe transfer failed after exhausting retries
//      └─ ThermalError    — thermal rig could not reach / hold the setpoint
//
// The transient branch is what the campaign runner keys shard retries on:
// a TransientError means the *infrastructure* (link, rig) hiccuped and the
// same shard may well succeed on a fresh host; anything else is treated as
// fatal for the shard (a program or configuration bug retries cannot fix).
#pragma once

#include <stdexcept>
#include <string>

namespace rh::common {

/// Root class for all recoverable hbm2-rowhammer-lab failures.
///
/// Layers that catch-and-rethrow (e.g. the Bender executor) can attach
/// diagnostic context — executed-instruction count, last command, cycle —
/// without losing the error's dynamic type: catch by reference, call
/// attach_context(), rethrow with `throw;`.
class Error : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;

  /// Appends a bracketed context note to what(). May be called repeatedly;
  /// notes accumulate in attachment order.
  void attach_context(const std::string& note) {
    context_ += context_.empty() ? note : ("; " + note);
    full_message_ = std::string(std::runtime_error::what()) + " [" + context_ + "]";
  }

  /// Accumulated context notes ("" when none attached).
  [[nodiscard]] const std::string& context() const { return context_; }

  [[nodiscard]] const char* what() const noexcept override {
    return full_message_.empty() ? std::runtime_error::what() : full_message_.c_str();
  }

private:
  std::string context_;
  std::string full_message_;
};

/// Invalid device geometry, timing set, or experiment parameters.
class ConfigError : public Error {
public:
  using Error::Error;
};

/// A DRAM command was issued in a state where the protocol forbids it
/// (e.g. ACT to an already-open bank, RD to a closed bank).
class ProtocolError : public Error {
public:
  using Error::Error;
};

/// A DRAM command arrived before a mandatory timing constraint elapsed
/// (e.g. ACT-to-ACT same bank before tRC).
class TimingError : public Error {
public:
  using Error::Error;
};

/// A command-line flag carried an out-of-domain value (zero worker count,
/// negative retry budget, NaN fault rate). Derives from ConfigError so
/// existing catch sites keep working.
class CliError : public ConfigError {
public:
  using ConfigError::ConfigError;
};

/// A DRAM Bender program is malformed (bad register, jump out of range,
/// missing END) or exceeded its execution budget.
class ProgramError : public Error {
public:
  using Error::Error;
};

/// A durable write, flush, or fsync to on-disk state (checkpoint journal,
/// metrics stream, job descriptor) failed — the disk is full, the medium is
/// failing, or the storage fault plane injected exactly that. Deliberately
/// NOT a TransientError: retrying the same write on a full or dying disk
/// just burns the shard retry budget. Campaign/serve layers catch this
/// branch to degrade (drop the journal, fail the job with a storage reason)
/// instead of crashing; the simulated results themselves are never touched.
class StorageError : public Error {
public:
  using Error::Error;
};

/// An infrastructure failure that is plausibly transient: retrying the same
/// operation (or the same shard on a fresh host) may succeed. The campaign
/// runner only spends shard retries on this branch of the hierarchy.
class TransientError : public Error {
public:
  using Error::Error;
};

/// A PCIe transfer (program upload or readback drain) kept failing after
/// the host's RetryPolicy was exhausted.
class TransportError : public TransientError {
public:
  using TransientError::TransientError;
};

/// The thermal rig could not settle on, or hold, the target temperature
/// within its budget (plant drift, injected excursions, dead heater).
class ThermalError : public TransientError {
public:
  using TransientError::TransientError;
};

}  // namespace rh::common
