// Error hierarchy for recoverable failures (C++ Core Guidelines I.10: use
// exceptions to signal a failure to perform a required task).
//
// Layering:
//   Error                 — root of all library failures
//   ├─ ConfigError        — invalid device / experiment configuration
//   ├─ ProtocolError      — DRAM command illegal in current bank/device state
//   ├─ TimingError        — DRAM command violates a JEDEC-style timing rule
//   └─ ProgramError       — malformed or diverging DRAM Bender program
#pragma once

#include <stdexcept>
#include <string>

namespace rh::common {

/// Root class for all recoverable hbm2-rowhammer-lab failures.
class Error : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Invalid device geometry, timing set, or experiment parameters.
class ConfigError : public Error {
public:
  using Error::Error;
};

/// A DRAM command was issued in a state where the protocol forbids it
/// (e.g. ACT to an already-open bank, RD to a closed bank).
class ProtocolError : public Error {
public:
  using Error::Error;
};

/// A DRAM command arrived before a mandatory timing constraint elapsed
/// (e.g. ACT-to-ACT same bank before tRC).
class TimingError : public Error {
public:
  using Error::Error;
};

/// A DRAM Bender program is malformed (bad register, jump out of range,
/// missing END) or exceeded its execution budget.
class ProgramError : public Error {
public:
  using Error::Error;
};

}  // namespace rh::common
