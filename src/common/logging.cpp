#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>

namespace rh::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

std::shared_ptr<LogSink>& sink_slot() {
  static std::shared_ptr<LogSink> sink = std::make_shared<StderrSink>();
  return sink;
}

std::shared_ptr<LogSink> current_sink() {
  std::lock_guard<std::mutex> lock(sink_mutex());
  return sink_slot();
}

std::chrono::steady_clock::time_point process_start() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

// Touch the start time during static init so the epoch is as close to
// process start as the translation unit allows.
const auto g_start_anchor = process_start();
}  // namespace

const char* log_level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

double log_monotonic_ms() {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   process_start())
      .count();
}

void StderrSink::write(LogLevel level, double mono_ms, const std::string& message) {
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "+%.3fms", mono_ms);
  std::cerr << "[" << log_level_tag(level) << " " << stamp << "] " << message << '\n';
}

void CapturingSink::write(LogLevel level, double mono_ms, const std::string& message) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(Record{level, mono_ms, message});
}

std::vector<CapturingSink::Record> CapturingSink::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::string CapturingSink::joined() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& r : records_) {
    out += r.message;
    out += '\n';
  }
  return out;
}

void CapturingSink::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
}

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

std::shared_ptr<LogSink> set_log_sink(std::shared_ptr<LogSink> sink) {
  if (!sink) sink = std::make_shared<StderrSink>();
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::swap(sink_slot(), sink);
  return sink;
}

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  current_sink()->write(level, log_monotonic_ms(), message);
}

}  // namespace rh::common
