// Compact ASCII renderings of the paper's plot types, so bench harnesses can
// show the *shape* of each figure directly in the terminal:
//   - horizontal box-and-whiskers rows (Figs. 3, 4)
//   - per-row line series (Fig. 5)
//   - 2-D scatter (Fig. 6)
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace rh::common {

/// One labelled box in a box-and-whiskers chart.
struct BoxRow {
  std::string label;
  BoxStats stats;
};

/// Renders labelled horizontal boxplots on a shared axis:
///   label  |----[==M==]-------|   (min, q1, median, q3, max)
/// `width` is the plot-area width in characters.
void render_boxplot(std::ostream& os, const std::vector<BoxRow>& rows, int width = 64,
                    const std::string& axis_label = {});

/// Renders a downsampled line series as a fixed-height character grid.
/// `ys` is the series; x is the index. NaN-free input required.
void render_line(std::ostream& os, const std::vector<double>& ys, int width = 96, int height = 12,
                 const std::string& title = {});

/// A labelled scatter point (Fig. 6: x = CV, y = mean BER, glyph = pseudo
/// channel, label bucket = channel).
struct ScatterPoint {
  double x = 0.0;
  double y = 0.0;
  char glyph = 'o';
};

/// Renders a scatter chart on a width x height character grid with axis
/// ranges derived from the data.
void render_scatter(std::ostream& os, const std::vector<ScatterPoint>& pts, int width = 72,
                    int height = 20, const std::string& title = {});

/// Renders a labelled intensity grid (telemetry per-bank activity heatmaps):
/// one output row per entry of `rows`, one character column per cell, glyph
/// density proportional to the cell's share of the global maximum. Rows may
/// have differing lengths; `labels` must parallel `rows`.
void render_heatmap(std::ostream& os, const std::vector<std::vector<double>>& rows,
                    const std::vector<std::string>& labels, const std::string& title = {});

}  // namespace rh::common
