// CSV emission for machine-readable bench output (--csv=<path>).
#pragma once

#include <fstream>
#include <ostream>
#include <string>
#include <vector>

namespace rh::common {

/// Streams rows of string cells to a CSV destination. Throws ConfigError if
/// the file cannot be opened. Cells containing commas or quotes are quoted.
class CsvWriter {
public:
  explicit CsvWriter(const std::string& path);
  /// Streams to an externally owned ostream (in-memory export, tests). The
  /// stream must outlive the writer.
  explicit CsvWriter(std::ostream& out);

  void write_row(const std::vector<std::string>& cells);

  /// Number of rows written so far (including the header, if any).
  [[nodiscard]] std::size_t rows_written() const { return rows_; }

private:
  std::ofstream file_;
  std::ostream* out_;
  std::size_t rows_ = 0;
};

}  // namespace rh::common
