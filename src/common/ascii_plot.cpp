#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "common/table.hpp"

namespace rh::common {

namespace {

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  [[nodiscard]] double span() const { return hi > lo ? hi - lo : 1.0; }
  [[nodiscard]] int to_col(double v, int width) const {
    const double frac = (v - lo) / span();
    return std::clamp(static_cast<int>(frac * (width - 1)), 0, width - 1);
  }
};

}  // namespace

void render_boxplot(std::ostream& os, const std::vector<BoxRow>& rows, int width,
                    const std::string& axis_label) {
  if (rows.empty()) return;
  Range r;
  for (const auto& row : rows) {
    r.include(row.stats.min);
    r.include(row.stats.max);
  }
  std::size_t label_w = 0;
  for (const auto& row : rows) label_w = std::max(label_w, row.label.size());

  for (const auto& row : rows) {
    std::string line(static_cast<std::size_t>(width), ' ');
    const int cmin = r.to_col(row.stats.min, width);
    const int cq1 = r.to_col(row.stats.q1, width);
    const int cmed = r.to_col(row.stats.median, width);
    const int cq3 = r.to_col(row.stats.q3, width);
    const int cmax = r.to_col(row.stats.max, width);
    for (int c = cmin; c <= cmax; ++c) line[static_cast<std::size_t>(c)] = '-';
    for (int c = cq1; c <= cq3; ++c) line[static_cast<std::size_t>(c)] = '=';
    line[static_cast<std::size_t>(cmin)] = '|';
    line[static_cast<std::size_t>(cmax)] = '|';
    line[static_cast<std::size_t>(cq1)] = '[';
    line[static_cast<std::size_t>(cq3)] = ']';
    line[static_cast<std::size_t>(cmed)] = 'M';
    os << "  " << row.label << std::string(label_w - row.label.size(), ' ') << " " << line << '\n';
  }
  os << "  " << std::string(label_w, ' ') << " " << fmt_double(r.lo, 4)
     << std::string(static_cast<std::size_t>(std::max(1, width - 24)), ' ') << fmt_double(r.hi, 4);
  if (!axis_label.empty()) os << "  (" << axis_label << ")";
  os << '\n';
}

void render_line(std::ostream& os, const std::vector<double>& ys, int width, int height,
                 const std::string& title) {
  if (ys.empty()) return;
  if (!title.empty()) os << "  " << title << '\n';
  Range r;
  for (double y : ys) r.include(y);

  // Downsample by max within each column bucket so peaks survive.
  std::vector<double> cols(static_cast<std::size_t>(width), r.lo);
  for (std::size_t i = 0; i < ys.size(); ++i) {
    const auto c = static_cast<std::size_t>(static_cast<double>(i) /
                                            static_cast<double>(ys.size()) * width);
    const std::size_t cc = std::min(c, static_cast<std::size_t>(width - 1));
    cols[cc] = std::max(cols[cc], ys[i]);
  }

  for (int rrow = height - 1; rrow >= 0; --rrow) {
    // Row 0's threshold equals the minimum so constant series still render.
    const double threshold = r.lo + r.span() * rrow / height;
    std::string line;
    line.reserve(static_cast<std::size_t>(width));
    for (int c = 0; c < width; ++c) {
      line += cols[static_cast<std::size_t>(c)] >= threshold ? '#' : ' ';
    }
    const char* tick = (rrow == height - 1) ? "max " : (rrow == 0 ? "min " : "    ");
    os << "  " << tick << '|' << line << '\n';
  }
  os << "       +" << std::string(static_cast<std::size_t>(width), '-') << '\n';
  os << "        y in [" << fmt_double(r.lo, 4) << ", " << fmt_double(r.hi, 4) << "], "
     << ys.size() << " points\n";
}

void render_scatter(std::ostream& os, const std::vector<ScatterPoint>& pts, int width, int height,
                    const std::string& title) {
  if (pts.empty()) return;
  if (!title.empty()) os << "  " << title << '\n';
  Range rx;
  Range ry;
  for (const auto& p : pts) {
    rx.include(p.x);
    ry.include(p.y);
  }
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (const auto& p : pts) {
    const int c = rx.to_col(p.x, width);
    const int rrow = ry.to_col(p.y, height);
    grid[static_cast<std::size_t>(height - 1 - rrow)][static_cast<std::size_t>(c)] = p.glyph;
  }
  for (const auto& line : grid) os << "  |" << line << '\n';
  os << "  +" << std::string(static_cast<std::size_t>(width), '-') << '\n';
  os << "   x in [" << fmt_double(rx.lo, 4) << ", " << fmt_double(rx.hi, 4) << "], y in ["
     << fmt_double(ry.lo, 4) << ", " << fmt_double(ry.hi, 4) << "]\n";
}

void render_heatmap(std::ostream& os, const std::vector<std::vector<double>>& rows,
                    const std::vector<std::string>& labels, const std::string& title) {
  if (rows.empty()) return;
  if (!title.empty()) os << "  " << title << '\n';
  static constexpr char kRamp[] = " .:-=+*#%@";
  static constexpr int kLevels = static_cast<int>(sizeof(kRamp) - 2);  // 0..9
  double max = 0.0;
  for (const auto& row : rows) {
    for (const double v : row) max = std::max(max, v);
  }
  std::size_t label_w = 0;
  for (const auto& label : labels) label_w = std::max(label_w, label.size());

  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::string& label = i < labels.size() ? labels[i] : std::string{};
    os << "  " << label << std::string(label_w - label.size(), ' ') << " |";
    for (const double v : rows[i]) {
      int level = 0;
      if (max > 0.0 && v > 0.0) {
        // Nonzero cells always render at least level 1 so sparse activity
        // stays visible next to a dominant hot bank.
        level = std::clamp(static_cast<int>(std::ceil(v / max * kLevels)), 1, kLevels);
      }
      os << kRamp[static_cast<std::size_t>(level)];
    }
    os << "|\n";
  }
  os << "  " << std::string(label_w, ' ') << " scale: ' '=0";
  if (max > 0.0) os << ", '" << kRamp[kLevels] << "'=" << fmt_double(max, 4);
  os << '\n';
}

}  // namespace rh::common
