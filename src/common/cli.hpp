// Minimal command-line flag parsing for bench harnesses and examples.
// Supports --key=value, --key value, and boolean --flag forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rh::common {

/// Parsed command line. Unknown flags are kept and can be rejected by the
/// caller via unknown_flags(); positional arguments are preserved in order.
/// All parse/validation failures throw CliError (a ConfigError), naming the
/// offending flag and value.
class CliArgs {
public:
  /// Parses argv[1..). Throws CliError on malformed input (e.g. "--=3").
  CliArgs(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// String value of --name, or `def` if absent.
  [[nodiscard]] std::string get(const std::string& name, const std::string& def) const;

  /// Integer value of --name, or `def` if absent. Throws CliError if the
  /// value is present but not an integer.
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t def) const;

  /// Double value of --name, or `def` if absent. Throws CliError if the
  /// value is present but not a number.
  [[nodiscard]] double get_double(const std::string& name, double def) const;

  // Validated getters for knobs where out-of-domain values would otherwise
  // fail far from the command line (a --jobs=0 campaign hangs planning, a
  // negative fault rate silently never fires, NaN poisons every compare).

  /// Integer that must be >= 1. `def` is returned unchecked when absent.
  [[nodiscard]] std::int64_t get_positive_int(const std::string& name, std::int64_t def) const;

  /// Finite double that must be > 0. Rejects NaN and infinities.
  [[nodiscard]] double get_positive_double(const std::string& name, double def) const;

  /// Finite double in [0, 1] (a probability/rate). Rejects NaN, infinities,
  /// negatives, and values above 1.
  [[nodiscard]] double get_fraction(const std::string& name, double def) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  /// Flags seen on the command line that the program never queried.
  /// Call at the end of flag handling to catch typos.
  [[nodiscard]] std::vector<std::string> unqueried_flags() const;

private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace rh::common
