// Deterministic randomness for the device simulator and the fault model.
//
// Two kinds of randomness are needed:
//
//  1. *Counter-based* ("hash") randomness: every DRAM cell owns random
//     quantities (RowHammer threshold, retention time, orientation jitter)
//     that must be (a) reproducible across runs, (b) addressable without
//     storing per-cell state (a 4 GiB stack has 2^35 cells), and (c)
//     statistically independent. We derive them as pure functions of
//     (seed, channel, pseudo-channel, bank, row, bit) via SplitMix64
//     finalization, the standard stateless construction.
//
//  2. *Sequential* randomness for host-side experiment decisions (row
//     sampling, shuffles): a small xoshiro256** engine, seeded explicitly.
//
// All distribution helpers are branch-light so the fault model can evaluate
// millions of cells per second.
#pragma once

#include <array>
#include <cstdint>

namespace rh::common {

/// SplitMix64 finalizer: bijective avalanche mixer over 64-bit words.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines a running hash with one more word (order-sensitive).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) noexcept {
  return splitmix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

/// Stateless hash of up to five coordinates, used to address per-cell
/// randomness: hash_coords(seed, channel, bank, row, bit) and similar.
[[nodiscard]] constexpr std::uint64_t hash_coords(std::uint64_t seed, std::uint64_t a,
                                                  std::uint64_t b = 0, std::uint64_t c = 0,
                                                  std::uint64_t d = 0) noexcept {
  std::uint64_t h = splitmix64(seed);
  h = hash_combine(h, a);
  h = hash_combine(h, b);
  h = hash_combine(h, c);
  h = hash_combine(h, d);
  return h;
}

/// Maps a 64-bit hash to a uniform double in [0, 1).
[[nodiscard]] constexpr double to_unit_double(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Approximate standard normal from a single 64-bit hash via the Irwin-Hall
/// construction (sum of four 16-bit uniforms, centered and scaled).
/// Max abs error vs a true normal is small in the central region; tails are
/// bounded at ~±3.46 sigma, which is adequate (and convenient) for modelling
/// bounded physical parameter variation.
[[nodiscard]] constexpr double approx_normal(std::uint64_t h) noexcept {
  // Four independent 16-bit lanes of the hash.
  const double u0 = static_cast<double>(h & 0xffffULL);
  const double u1 = static_cast<double>((h >> 16) & 0xffffULL);
  const double u2 = static_cast<double>((h >> 32) & 0xffffULL);
  const double u3 = static_cast<double>((h >> 48) & 0xffffULL);
  // Sum of 4 U(0,1): mean 2, variance 4/12 = 1/3  =>  scale by sqrt(3).
  constexpr double inv = 1.0 / 65536.0;
  constexpr double sqrt3 = 1.7320508075688772;
  return ((u0 + u1 + u2 + u3) * inv - 2.0) * sqrt3;
}

/// xoshiro256** sequential PRNG for host-side sampling decisions.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 expansion of `seed`.
  explicit Xoshiro256(std::uint64_t seed) noexcept {
    std::uint64_t s = seed;
    for (auto& w : state_) {
      s += 0x9e3779b97f4a7c15ULL;
      w = splitmix64(s);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return to_unit_double((*this)()); }

  /// Uniform integer in [0, n) without modulo bias for the n we use
  /// (n << 2^64; single multiply-shift reduction).
  std::uint64_t below(std::uint64_t n) noexcept {
    return static_cast<std::uint64_t>((static_cast<__uint128_t>((*this)()) * n) >> 64);
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace rh::common
