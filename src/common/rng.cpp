#include "common/rng.hpp"

// Header-only by design; this translation unit pins the library and hosts
// compile-time self-checks for the hash and distribution helpers.

namespace rh::common {

static_assert(splitmix64(0) != 0, "splitmix64 must avalanche the zero input");
static_assert(splitmix64(1) != splitmix64(2), "splitmix64 must separate adjacent inputs");
static_assert(hash_coords(1, 2, 3) != hash_coords(1, 3, 2), "hash_coords must be order-sensitive");
static_assert(to_unit_double(~0ULL) < 1.0, "unit doubles stay below 1");
static_assert(approx_normal(0) < 0.0, "all-zero lanes map to the lower tail");

}  // namespace rh::common
