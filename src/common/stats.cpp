#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.hpp"

namespace rh::common {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double coefficient_of_variation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

double quantile_sorted(std::span<const double> sorted, double q) {
  RH_EXPECTS(q >= 0.0 && q <= 1.0);
  RH_EXPECTS(!sorted.empty());
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

namespace {

// Median of sorted[first, last).
double median_range(std::span<const double> sorted, std::size_t first, std::size_t last) {
  const std::size_t n = last - first;
  RH_EXPECTS(n > 0);
  const std::size_t mid = first + n / 2;
  if (n % 2 == 1) return sorted[mid];
  return 0.5 * (sorted[mid - 1] + sorted[mid]);
}

}  // namespace

BoxStats box_stats(std::span<const double> xs) {
  BoxStats s;
  s.count = xs.size();
  if (xs.empty()) return s;

  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();

  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = mean(sorted);
  s.median = median_range(sorted, 0, n);
  if (n == 1) {
    s.q1 = s.q3 = s.median;
  } else {
    // Tukey hinges: medians of the lower and upper halves; the middle element
    // of an odd-length set is excluded from both halves, matching the paper's
    // caption ("medians of the first and second half of the ordered set").
    const std::size_t half = n / 2;
    s.q1 = median_range(sorted, 0, half);
    s.q3 = median_range(sorted, n - half, n);
  }
  return s;
}

Histogram::Histogram(double lo_, double hi_, std::size_t bins) : lo(lo_), hi(hi_), counts(bins, 0) {
  RH_EXPECTS(bins > 0);
  RH_EXPECTS(hi_ > lo_);
}

void Histogram::add(double x) {
  const double frac = (x - lo) / (hi - lo);
  auto idx = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts.size()) - 1);
  ++counts[static_cast<std::size_t>(idx)];
}

std::size_t Histogram::total() const {
  return std::accumulate(counts.begin(), counts.end(), std::size_t{0});
}

}  // namespace rh::common
