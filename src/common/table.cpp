#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>

#include "common/assert.hpp"

namespace rh::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  RH_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  RH_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  if (s.rfind("0x", 0) == 0) return false;  // hex literals read as labels
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' || c == '+' ||
          c == 'e' || c == 'E' || c == '%' || c == 'x')) {
      return false;
    }
  }
  return true;
}

}  // namespace

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      os << "  ";
      if (looks_numeric(row[c]) && c > 0) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_percent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", digits, fraction * 100.0);
  return buf;
}

}  // namespace rh::common
