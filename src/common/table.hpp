// Aligned ASCII table rendering for bench harness output. Every figure/table
// bench prints the series the paper plots as one of these tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rh::common {

/// A simple column-aligned text table.
///
/// Usage:
///   Table t({"channel", "mean BER (%)", "max BER (%)"});
///   t.add_row({"0", "0.81", "1.54"});
///   t.print(std::cout);
class Table {
public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders with a header rule and right-aligned numeric-looking cells.
  void print(std::ostream& os) const;

  /// Renders as CSV (no alignment, comma-separated, header first).
  void print_csv(std::ostream& os) const;

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimal places.
[[nodiscard]] std::string fmt_double(double v, int digits = 4);

/// Formats a fraction as a percentage string, e.g. 0.0313 -> "3.13%".
[[nodiscard]] std::string fmt_percent(double fraction, int digits = 2);

}  // namespace rh::common
