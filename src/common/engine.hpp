// Engine selection for the simulation stack.
//
// The repo ships two device-core engines that must be bit-for-bit
// indistinguishable from the outside:
//
//   kInterp — the reference interpreter: Executor steps every Bender
//             instruction and the fault model re-derives each cell's
//             threshold on every row settle. Slow, simple, the ground truth.
//   kFast   — the production engine: programs are pre-decoded into timed
//             command traces, tight hammer loops fast-forward in closed
//             form, per-row disturbance is accumulated structure-of-arrays,
//             and the fault kernel evaluates rows from a per-row sorted
//             threshold cache. Every observable (reports, journals, metrics
//             streams, flip sets, error strings) must match kInterp exactly
//             at the same seed; tests/engine_diff_test.cpp and the
//             verify::Property campaign identities enforce the contract.
//
// PlantedBug deliberately breaks the fast path in one of the three ways the
// closed-form math most plausibly goes wrong, so the differential rig can
// prove it *would* catch a real regression (the same pattern as rh_fuzz's
// --disable-rule knob for the timing oracle).
#pragma once

#include <string>
#include <string_view>

#include "common/error.hpp"

namespace rh::common {

enum class EngineKind : std::uint8_t {
  kFast,    ///< pre-decoded traces + batched kernels (default)
  kInterp,  ///< reference interpreter
};

enum class PlantedBug : std::uint8_t {
  kNone,
  /// Loop fast-forward replays one iteration too few (but still advances
  /// registers, clock, and instruction count as if it ran them all).
  kOffByOneFastForward,
  /// The batched hammer macro-op skips the TRR sampler observation of the
  /// second aggressor row.
  kSkipTrrSample,
  /// The batched hammer macro-op forgets that each aggressor's final ACT
  /// re-settles it, leaving stale disturbance on the aggressor rows.
  kStaleDisturbanceFlush,
};

[[nodiscard]] constexpr std::string_view to_string(EngineKind kind) {
  return kind == EngineKind::kFast ? "fast" : "interp";
}

[[nodiscard]] constexpr std::string_view to_string(PlantedBug bug) {
  switch (bug) {
    case PlantedBug::kOffByOneFastForward: return "off-by-one-fast-forward";
    case PlantedBug::kSkipTrrSample: return "skip-trr-sample";
    case PlantedBug::kStaleDisturbanceFlush: return "stale-disturbance-flush";
    case PlantedBug::kNone: break;
  }
  return "none";
}

[[nodiscard]] inline EngineKind parse_engine_kind(std::string_view text) {
  if (text == "fast") return EngineKind::kFast;
  if (text == "interp") return EngineKind::kInterp;
  throw ConfigError("unknown engine '" + std::string(text) + "' (expected fast|interp)");
}

[[nodiscard]] inline PlantedBug parse_planted_bug(std::string_view text) {
  for (const PlantedBug bug :
       {PlantedBug::kNone, PlantedBug::kOffByOneFastForward, PlantedBug::kSkipTrrSample,
        PlantedBug::kStaleDisturbanceFlush}) {
    if (text == to_string(bug)) return bug;
  }
  throw ConfigError("unknown engine bug '" + std::string(text) +
                    "' (expected none|off-by-one-fast-forward|skip-trr-sample|"
                    "stale-disturbance-flush)");
}

}  // namespace rh::common
