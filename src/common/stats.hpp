// Descriptive statistics used throughout the characterization study:
// box-and-whiskers summaries (Figs. 3 and 4 of the paper), coefficient of
// variation (Fig. 6), and simple histograms for reports.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rh::common {

/// Five-number summary plus mean, as plotted by the paper's box-and-whiskers
/// figures: box = [q1, q3], line = median, whiskers = [min, max], marker = mean.
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::size_t count = 0;
};

/// Mean of `xs`; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Population standard deviation of `xs`; 0 for fewer than two samples.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Coefficient of variation: stddev / mean (the paper's Fig. 6 x-axis).
/// Returns 0 when the mean is 0.
[[nodiscard]] double coefficient_of_variation(std::span<const double> xs);

/// Linear-interpolated quantile of *sorted* data, q in [0, 1].
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Box-and-whiskers summary. Copies and sorts internally.
/// Quartile convention matches the paper's caption: q1/q3 are the medians of
/// the lower and upper halves of the ordered data (Tukey hinges).
[[nodiscard]] BoxStats box_stats(std::span<const double> xs);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the edge buckets.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;

  Histogram(double lo_, double hi_, std::size_t bins);
  void add(double x);
  [[nodiscard]] std::size_t total() const;
};

}  // namespace rh::common
