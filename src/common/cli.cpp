#include "common/cli.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "common/error.hpp"

namespace rh::common {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) throw CliError("bare '--' is not a valid flag");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string key = body.substr(0, eq);
      if (key.empty()) throw CliError("malformed flag: " + arg);
      flags_[key] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  queried_[name] = true;
  return flags_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name, const std::string& def) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t def) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw CliError("flag --" + name + " expects an integer, got '" + it->second + "'");
  }
}

double CliArgs::get_double(const std::string& name, double def) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw CliError("flag --" + name + " expects a number, got '" + it->second + "'");
  }
}

std::int64_t CliArgs::get_positive_int(const std::string& name, std::int64_t def) const {
  const std::int64_t v = get_int(name, def);
  if (has(name) && v < 1) {
    throw CliError("flag --" + name + " expects a positive integer, got '" +
                   get(name, "") + "'");
  }
  return v;
}

double CliArgs::get_positive_double(const std::string& name, double def) const {
  const double v = get_double(name, def);
  if (has(name) && (!std::isfinite(v) || v <= 0.0)) {
    throw CliError("flag --" + name + " expects a positive finite number, got '" +
                   get(name, "") + "'");
  }
  return v;
}

double CliArgs::get_fraction(const std::string& name, double def) const {
  const double v = get_double(name, def);
  if (has(name) && (!std::isfinite(v) || v < 0.0 || v > 1.0)) {
    throw CliError("flag --" + name + " expects a fraction in [0, 1], got '" +
                   get(name, "") + "'");
  }
  return v;
}

std::vector<std::string> CliArgs::unqueried_flags() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : flags_) {
    (void)value;
    if (queried_.find(key) == queried_.end()) out.push_back(key);
  }
  return out;
}

}  // namespace rh::common
