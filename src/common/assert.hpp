// Precondition / postcondition checking in the spirit of the GSL's
// Expects()/Ensures() (C++ Core Guidelines I.6, I.8).
//
// Violations are programmer errors, not recoverable conditions, so they throw
// std::logic_error subclasses carrying the failed expression and location.
#pragma once

#include <stdexcept>
#include <string>

namespace rh::common {

/// Thrown when a function's precondition is violated.
class PreconditionError : public std::logic_error {
public:
  using std::logic_error::logic_error;
};

/// Thrown when a function's postcondition or internal invariant is violated.
class PostconditionError : public std::logic_error {
public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void precondition_failure(const char* expr, const char* file, int line) {
  throw PreconditionError(std::string("precondition failed: ") + expr + " at " + file + ":" +
                          std::to_string(line));
}
[[noreturn]] inline void postcondition_failure(const char* expr, const char* file, int line) {
  throw PostconditionError(std::string("postcondition failed: ") + expr + " at " + file + ":" +
                           std::to_string(line));
}
}  // namespace detail

}  // namespace rh::common

#define RH_EXPECTS(expr) \
  ((expr) ? void(0) : ::rh::common::detail::precondition_failure(#expr, __FILE__, __LINE__))
#define RH_ENSURES(expr) \
  ((expr) ? void(0) : ::rh::common::detail::postcondition_failure(#expr, __FILE__, __LINE__))
