// Leveled logging with pluggable sinks. Quiet by default so bench output
// stays clean; examples raise the level for narrative progress lines.
//
// Messages that pass the global threshold are routed to one installed
// LogSink. The default sink writes to stderr with a level tag and a
// monotonic timestamp (milliseconds since process start); tests install a
// CapturingSink to assert on emitted lines without touching stderr.
#pragma once

#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace rh::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Destination for log lines that pass the global threshold. Implementations
/// must tolerate concurrent write() calls (the dispatcher does not serialize).
class LogSink {
public:
  virtual ~LogSink() = default;

  /// One log record. `mono_ms` is a monotonic timestamp in milliseconds
  /// since process start (steady clock, immune to wall-clock jumps).
  virtual void write(LogLevel level, double mono_ms, const std::string& message) = 0;
};

/// Default sink: one line per record to stderr, formatted as
/// `[LEVEL +12.345ms] message`.
class StderrSink : public LogSink {
public:
  void write(LogLevel level, double mono_ms, const std::string& message) override;
};

/// Test sink: retains every record in memory instead of printing.
class CapturingSink : public LogSink {
public:
  struct Record {
    LogLevel level;
    double mono_ms;
    std::string message;
  };

  void write(LogLevel level, double mono_ms, const std::string& message) override;

  /// Snapshot of records captured so far (copied; safe across writers).
  [[nodiscard]] std::vector<Record> records() const;
  /// Concatenated messages for substring assertions.
  [[nodiscard]] std::string joined() const;
  void clear();

private:
  mutable std::mutex mutex_;
  std::vector<Record> records_;
};

/// Sets the global minimum level that is emitted. Thread-safe (atomic).
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Installs `sink` as the destination for all subsequent log lines and
/// returns the previously installed sink. Passing nullptr restores the
/// default stderr sink.
std::shared_ptr<LogSink> set_log_sink(std::shared_ptr<LogSink> sink);

/// Short uppercase tag for a level ("DEBUG", "INFO ", ...).
[[nodiscard]] const char* log_level_tag(LogLevel level);

/// Milliseconds elapsed on the steady clock since process start.
[[nodiscard]] double log_monotonic_ms();

/// Emits one line at `level` if it passes the global threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug) log_line(LogLevel::kDebug, detail::concat(args...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo) log_line(LogLevel::kInfo, detail::concat(args...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn) log_line(LogLevel::kWarn, detail::concat(args...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError) log_line(LogLevel::kError, detail::concat(args...));
}

}  // namespace rh::common
