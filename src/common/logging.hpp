// Leveled logging to stderr. Quiet by default so bench output stays clean;
// examples raise the level for narrative progress lines.
#pragma once

#include <sstream>
#include <string>

namespace rh::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is emitted. Thread-safe (atomic).
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits one line at `level` if it passes the global threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug) log_line(LogLevel::kDebug, detail::concat(args...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo) log_line(LogLevel::kInfo, detail::concat(args...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn) log_line(LogLevel::kWarn, detail::concat(args...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError) log_line(LogLevel::kError, detail::concat(args...));
}

}  // namespace rh::common
