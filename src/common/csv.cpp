#include "common/csv.hpp"

#include "common/error.hpp"

namespace rh::common {

CsvWriter::CsvWriter(const std::string& path) : file_(path), out_(&file_) {
  if (!file_) throw ConfigError("cannot open CSV output file: " + path);
}

CsvWriter::CsvWriter(std::ostream& out) : out_(&out) {}

namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << escape(cells[i]);
  }
  *out_ << '\n';
  ++rows_;
}

}  // namespace rh::common
