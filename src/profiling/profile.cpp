#include "profiling/profile.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <ostream>
#include <string>

namespace rh::profiling {

namespace {

/// Phase indices in sorted-name order, so write_json emits key-sorted
/// objects without a runtime sort.
constexpr std::array<Phase, kPhaseCount> kSortedPhases = {
    Phase::kCheckpoint, Phase::kDrain,    Phase::kExecute, Phase::kIdle,
    Phase::kRecover,    Phase::kReport,   Phase::kRigBuild, Phase::kShardRun,
    Phase::kThermal,    Phase::kUpload,
};

static_assert(kSortedPhases.size() == kPhaseCount);

/// Fixed-precision wall rendering: milliseconds to 3 decimals is plenty for
/// phase accounting and keeps the document locale/format stable.
std::string wall_text(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

/// Phases whose device-cycle totals are a pure function of the sweep (the
/// measurement command stream). Bring-up phases (thermal settle, rig_build)
/// repeat once per worker rig, so their cycle totals scale with --jobs and
/// belong to the schedule, not the physics.
constexpr bool cycles_are_deterministic(Phase p) {
  return p == Phase::kExecute || p == Phase::kShardRun;
}

}  // namespace

void Profile::record(Phase phase, std::uint64_t device_cycles, double wall_ms,
                     std::uint64_t calls) {
  PhaseStat& s = stats_[static_cast<std::size_t>(phase)];
  s.calls += calls;
  s.device_cycles += device_cycles;
  s.wall_ms += wall_ms;
}

double Profile::total_wall_ms() const {
  double total = 0.0;
  for (const auto& s : stats_) total += s.wall_ms;
  return total;
}

void Profile::merge_from(const Profile& other) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    stats_[i].calls += other.stats_[i].calls;
    stats_[i].device_cycles += other.stats_[i].device_cycles;
    stats_[i].wall_ms += other.stats_[i].wall_ms;
  }
}

void Profile::reset() { stats_.fill(PhaseStat{}); }

void Profile::write_json(std::ostream& os, bool include_wall) const {
  os << '{';
  bool first = true;
  for (const Phase p : kSortedPhases) {
    const PhaseStat& s = stat(p);
    if (!first) os << ',';
    first = false;
    os << '"' << to_string(p) << "\":{";
    if (include_wall) {
      os << "\"calls\":" << s.calls << ",\"device_cycles\":" << s.device_cycles
         << ",\"wall_ms\":" << wall_text(s.wall_ms);
    } else if (cycles_are_deterministic(p)) {
      os << "\"device_cycles\":" << s.device_cycles;
    }
    os << '}';
  }
  os << '}';
}

void PhaseTimer::stop() {
  if (stopped_) return;
  stopped_ = true;
  const auto elapsed =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start_)
          .count();
  const std::uint64_t cycles =
      cycle_clock_ != nullptr ? *cycle_clock_ - start_cycles_ : 0;
  profile_->record(phase_, cycles, elapsed);
}

}  // namespace rh::profiling
