// Phase-level profiling for the simulator stack: where does a campaign's
// time actually go?
//
// Every phase accounts two *independent* clocks:
//   - device_cycles — simulated interface-clock cycles consumed while the
//     phase was open. This is physics: it is a pure function of the command
//     stream, so totals are byte-identical across --jobs counts, reruns, and
//     machines (the determinism test pins this).
//   - wall_ms — real host-process time (steady_clock). This is engineering:
//     it depends on the machine, the scheduler, and the build, and is what
//     the perf baseline tracks. Wall fields are therefore *excluded* from
//     every byte-identity check and from the deterministic report view.
//
// Phase taxonomy (see DESIGN.md §10):
//   host-level  — upload / execute / drain / recover / thermal: one
//                 BenderHost's program pipeline. Device cycles advance only
//                 in execute (programs) and thermal (PID settle).
//   campaign-level — rig_build / shard_run / checkpoint / idle / report:
//                 the worker pool. shard_run *contains* the host-level
//                 phases of the programs it ran, so campaign-level and
//                 host-level groups each sum to ~the run's total on their
//                 own axis; do not add the two groups together.
//
// Threading model mirrors MetricsRegistry: each worker owns a private
// Profile and the campaign merges them (merge_from) under its completion
// lock; a Profile itself is not thread-safe.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string_view>

namespace rh::profiling {

enum class Phase : std::uint8_t {
  // host-level
  kUpload = 0,  ///< program/wide-register PCIe upload (incl. retries)
  kExecute,     ///< executor running a program (device cycles advance)
  kDrain,       ///< readback FIFO drain + CRC verify (incl. re-drains)
  kRecover,     ///< fault recovery actions (calls only; time stays in the
                ///< phase where the retry ran, so nothing double-counts)
  kThermal,     ///< thermal rig settle/guard (device cycles advance)
  // campaign-level
  kRigBuild,    ///< worker host construction + bring-up to temperature
  kShardRun,    ///< run_shard measurement work (contains host-level phases)
  kCheckpoint,  ///< journal append (fsync'd) under the completion lock
  kIdle,        ///< worker lifetime not accounted to any phase above
  kReport,      ///< end-of-run report/export generation
};

inline constexpr std::size_t kPhaseCount = 10;

[[nodiscard]] constexpr std::string_view to_string(Phase p) {
  switch (p) {
    case Phase::kUpload: return "upload";
    case Phase::kExecute: return "execute";
    case Phase::kDrain: return "drain";
    case Phase::kRecover: return "recover";
    case Phase::kThermal: return "thermal";
    case Phase::kRigBuild: return "rig_build";
    case Phase::kShardRun: return "shard_run";
    case Phase::kCheckpoint: return "checkpoint";
    case Phase::kIdle: return "idle";
    case Phase::kReport: return "report";
  }
  return "?";
}

struct PhaseStat {
  std::uint64_t calls = 0;
  std::uint64_t device_cycles = 0;
  double wall_ms = 0.0;
};

/// Per-thread phase accumulator. Fleet aggregation follows the
/// MetricsRegistry pattern: workers each fill their own and the owner calls
/// merge_from once they are joined.
class Profile {
public:
  void record(Phase phase, std::uint64_t device_cycles, double wall_ms,
              std::uint64_t calls = 1);

  [[nodiscard]] const PhaseStat& stat(Phase phase) const {
    return stats_[static_cast<std::size_t>(phase)];
  }
  /// Sum of wall_ms over every phase (both groups; see the header comment
  /// before reading anything into the number).
  [[nodiscard]] double total_wall_ms() const;

  /// Adds every phase's calls/cycles/wall from `other`.
  void merge_from(const Profile& other);
  void reset();

  /// One key-sorted JSON object, {"checkpoint":{"calls":..,...},...}, every
  /// phase always present so documents diff cleanly. include_wall=false
  /// keeps only the device_cycles of execute and shard_run — the projection
  /// that is byte-identical across schedules. Everything else is dropped:
  /// wall_ms is host time, call counts depend on which worker got which
  /// shard, and bring-up cycles (rig_build, thermal) repeat once per worker
  /// rig, so all of them vary with --jobs.
  void write_json(std::ostream& os, bool include_wall = true) const;

private:
  std::array<PhaseStat, kPhaseCount> stats_{};
};

/// RAII scope timer: opens a phase at construction, records it into the
/// profile at destruction (or an early stop()). `cycle_clock` may point at
/// the owning host's simulated clock; the timer samples it at both ends so
/// phases that advance simulated time (execute, thermal) report the cycles
/// they consumed. Pass nullptr for pure host-side phases.
class PhaseTimer {
public:
  PhaseTimer(Profile& profile, Phase phase, const std::uint64_t* cycle_clock = nullptr)
      : profile_(&profile),
        cycle_clock_(cycle_clock),
        phase_(phase),
        start_cycles_(cycle_clock != nullptr ? *cycle_clock : 0),
        start_(std::chrono::steady_clock::now()) {}

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  ~PhaseTimer() { stop(); }

  /// Records the phase now instead of at scope exit; idempotent.
  void stop();

private:
  Profile* profile_;
  const std::uint64_t* cycle_clock_;
  Phase phase_;
  std::uint64_t start_cycles_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

}  // namespace rh::profiling
