// The campaign run report: one post-mortem document that joins the phase
// profile, the campaign/resilience counters, the aggregated metrics
// snapshot, trace accounting, and per-shard timings.
//
// Two renderings:
//   - write_report_json — machine-readable, key-sorted. With
//     include_wall=false it emits only the *deterministic projection*:
//     wall-clock fields, per-phase call counts (scheduling-dependent),
//     gauges (last-merge-wins, so absorb-order-dependent), and any metric
//     named *wall_ms* are dropped; what remains is byte-identical for a
//     fixed seed regardless of --jobs or machine. The golden/determinism
//     tests compare exactly this projection.
//   - render_report_text — the human rendering, via common/table and
//     common/ascii_plot (phase table, latency percentiles + boxplot,
//     slowest-N shards, throughput and fault-storm summary lines).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "profiling/profile.hpp"
#include "telemetry/metrics.hpp"

namespace rh::profiling {

/// Cost accounting for one executed shard. device_cycles and attempts are
/// deterministic for a fixed seed; wall_ms is not.
struct ShardTiming {
  std::uint64_t shard = 0;
  std::uint64_t device_cycles = 0;
  double wall_ms = 0.0;
  unsigned attempts = 1;
  /// The shard's span-tree root (telemetry::span_id(shard, 0, 0)); links
  /// this row to its attempts/phases in the Chrome span export. 0 when the
  /// run predates span tracing.
  std::uint64_t span = 0;
};

/// Exact (sample-level, not bucketed) latency percentiles of a wall-ms set.
struct LatencySummary {
  std::size_t count = 0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double total_ms = 0.0;
};

[[nodiscard]] LatencySummary summarize_latencies(std::vector<double> wall_ms);

/// Command-trace ring accounting carried into the report.
struct TraceStats {
  std::uint64_t recorded = 0;
  std::uint64_t retained = 0;
  std::uint64_t dropped = 0;
};

struct RunReport {
  std::string campaign;  ///< label, e.g. "fig4"
  std::uint64_t seed = 0;
  unsigned jobs = 1;

  std::uint64_t shards_total = 0;
  std::uint64_t shards_done = 0;     ///< executed this run
  std::uint64_t shards_skipped = 0;  ///< restored from the checkpoint journal
  std::uint64_t shards_failed = 0;
  std::uint64_t shards_fatal = 0;
  std::uint64_t shards_retried = 0;
  std::uint64_t records = 0;

  double elapsed_wall_ms = 0.0;  ///< whole-campaign host wall clock
  Profile profile;               ///< merged fleet profile (hosts + workers)
  std::vector<ShardTiming> timings;    ///< executed shards, in shard order
  telemetry::MetricsSnapshot metrics;  ///< aggregated fleet registry
  TraceStats trace;
  /// Span-forest accounting (campaign -> shard -> attempt -> phase spans).
  std::uint64_t spans_total = 0;
  std::uint64_t spans_dropped = 0;  ///< phase spans lost to per-attempt budgets

  /// Total interface commands issued, summed from the cmd.* counters (0
  /// when the run had no telemetry sink attached).
  [[nodiscard]] std::uint64_t commands() const;
  /// Simulated device cycles of *measurement* (shard_run; falls back to
  /// execute for single-host runs). This is the gated throughput numerator:
  /// rig bring-up is simulated PID settle, not silicon time the sweep
  /// bought, so it lives in bringup_device_cycles() instead — counting it
  /// here once inflated device_cycles_per_host_second ~3.5x.
  [[nodiscard]] std::uint64_t device_cycles() const;
  /// Simulated cycles spent bringing rigs to temperature (rig_build;
  /// falls back to thermal for single-host runs). Reported for context,
  /// never part of a throughput axis.
  [[nodiscard]] std::uint64_t bringup_device_cycles() const;
  /// Measurement cycles only (shard_run, falling back to execute): a pure
  /// function of the sweep, invariant across --jobs — the "device_cycles"
  /// the deterministic report projection emits. Bring-up cycles are
  /// excluded because each worker rig settles its own thermal loop.
  [[nodiscard]] std::uint64_t deterministic_device_cycles() const;
  /// commands() per host wall second; 0 when unmeasurable.
  [[nodiscard]] double commands_per_host_second() const;
  /// device_cycles() per host wall second — the "how much silicon time does
  /// one lab second buy" throughput axis the perf baseline tracks.
  [[nodiscard]] double device_cycles_per_host_second() const;
  /// Fraction of jobs x elapsed wall spent inside shard measurement.
  [[nodiscard]] double worker_utilization() const;
};

void write_report_json(std::ostream& os, const RunReport& report, bool include_wall = true);
void render_report_text(std::ostream& os, const RunReport& report);

/// Emits the rh-perf-baseline/v1 throughput document (keys sorted) that
/// scripts/check_perf.py diffs against the committed baseline. Shared by
/// bench/perf_baseline and the golden-contract schema test.
void write_perf_baseline_json(std::ostream& os, const RunReport& report, std::uint32_t stride);

}  // namespace rh::profiling
