#include "profiling/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/ascii_plot.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace rh::profiling {

namespace {

/// JSON number rendering (integers without a fraction, doubles with enough
/// digits to be stable); mirrors the telemetry export conventions.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Wall milliseconds at fixed 3-decimal precision.
std::string wall_text(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

void write_latency_json(std::ostream& os, const LatencySummary& s) {
  os << "{\"count\":" << s.count << ",\"max\":" << wall_text(s.max)
     << ",\"mean\":" << wall_text(s.mean) << ",\"min\":" << wall_text(s.min)
     << ",\"p50\":" << wall_text(s.p50) << ",\"p90\":" << wall_text(s.p90)
     << ",\"p99\":" << wall_text(s.p99) << ",\"total_ms\":" << wall_text(s.total_ms) << '}';
}

/// The deterministic projection of the metrics snapshot: counters and
/// histograms only (gauges are last-merge-wins across worker sinks, so
/// their values depend on retire order), minus anything wall-clock-derived.
telemetry::MetricsSnapshot deterministic_metrics(const telemetry::MetricsSnapshot& full) {
  telemetry::MetricsSnapshot out;
  for (const auto& e : full.entries) {
    if (e.kind == telemetry::MetricKind::kGauge) continue;
    if (e.name.find("wall_ms") != std::string::npos) continue;
    // Ring-drop accounting depends on trace capacity and absorb order, not
    // on the physics of the sweep.
    if (e.name.rfind("telemetry.trace_", 0) == 0) continue;
    out.entries.push_back(e);
  }
  return out;
}

std::vector<double> wall_samples(const std::vector<ShardTiming>& timings) {
  std::vector<double> ws;
  ws.reserve(timings.size());
  for (const auto& t : timings) ws.push_back(t.wall_ms);
  return ws;
}

std::string fmt_cycles(std::uint64_t cycles) {
  if (cycles >= 10'000'000) return common::fmt_double(static_cast<double>(cycles) * 1e-6, 1) + "M";
  return std::to_string(cycles);
}

/// Span ids render as hex strings, matching the Chrome span export's id/
/// parent args, so report rows grep straight into the trace file.
std::string span_hex(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(id));
  return buf;
}

}  // namespace

LatencySummary summarize_latencies(std::vector<double> wall_ms) {
  LatencySummary s;
  s.count = wall_ms.size();
  if (wall_ms.empty()) return s;
  std::sort(wall_ms.begin(), wall_ms.end());
  s.min = wall_ms.front();
  s.max = wall_ms.back();
  s.p50 = common::quantile_sorted(wall_ms, 0.50);
  s.p90 = common::quantile_sorted(wall_ms, 0.90);
  s.p99 = common::quantile_sorted(wall_ms, 0.99);
  s.mean = common::mean(wall_ms);
  for (const double w : wall_ms) s.total_ms += w;
  return s;
}

std::uint64_t RunReport::commands() const {
  double total = 0.0;
  for (const auto& e : metrics.entries) {
    if (e.kind == telemetry::MetricKind::kCounter && e.name.rfind("cmd.", 0) == 0) {
      total += e.value;
    }
  }
  return static_cast<std::uint64_t>(total);
}

std::uint64_t RunReport::device_cycles() const {
  const std::uint64_t shard_run = profile.stat(Phase::kShardRun).device_cycles;
  return shard_run > 0 ? shard_run : profile.stat(Phase::kExecute).device_cycles;
}

std::uint64_t RunReport::bringup_device_cycles() const {
  const std::uint64_t rig_build = profile.stat(Phase::kRigBuild).device_cycles;
  return rig_build > 0 ? rig_build : profile.stat(Phase::kThermal).device_cycles;
}

std::uint64_t RunReport::deterministic_device_cycles() const {
  // Measurement cycles are already the deterministic projection: bring-up
  // was split out of device_cycles() precisely because it scales with the
  // number of rigs built, not with the sweep.
  return device_cycles();
}

double RunReport::commands_per_host_second() const {
  if (elapsed_wall_ms <= 0.0) return 0.0;
  return static_cast<double>(commands()) / (elapsed_wall_ms * 1e-3);
}

double RunReport::device_cycles_per_host_second() const {
  if (elapsed_wall_ms <= 0.0) return 0.0;
  return static_cast<double>(device_cycles()) / (elapsed_wall_ms * 1e-3);
}

double RunReport::worker_utilization() const {
  if (elapsed_wall_ms <= 0.0 || jobs == 0) return 0.0;
  const double busy = profile.stat(Phase::kShardRun).wall_ms;
  return std::clamp(busy / (static_cast<double>(jobs) * elapsed_wall_ms), 0.0, 1.0);
}

void write_report_json(std::ostream& os, const RunReport& report, bool include_wall) {
  // Keys at every level are emitted in sorted order: byte-stable diffs.
  os << '{';
  if (include_wall) {
    // Bring-up scales with rigs built (jobs, retries), so the
    // deterministic projection drops it along with the other wall keys.
    os << "\"bringup_device_cycles\":" << report.bringup_device_cycles() << ',';
  }
  os << "\"campaign\":\"" << telemetry::json_escape(report.campaign) << '"';
  os << ",\"commands\":" << report.commands();
  if (include_wall) {
    os << ",\"commands_per_host_second\":" << json_number(report.commands_per_host_second());
  }
  os << ",\"device_cycles\":"
     << (include_wall ? report.device_cycles() : report.deterministic_device_cycles());
  if (include_wall) {
    os << ",\"device_cycles_per_host_second\":"
       << json_number(report.device_cycles_per_host_second());
    os << ",\"elapsed_wall_ms\":" << wall_text(report.elapsed_wall_ms);
    // jobs is scheduling, not physics; the deterministic projection drops it.
    os << ",\"jobs\":" << report.jobs;
  }
  os << ",\"metrics\":";
  if (include_wall) {
    report.metrics.write_json(os);
  } else {
    deterministic_metrics(report.metrics).write_json(os);
  }
  os << ",\"phases\":";
  report.profile.write_json(os, include_wall);
  os << ",\"records\":" << report.records;
  os << ",\"resilience\":{\"aborted\":" << json_number(report.metrics.value_or(
            "resilience.aborted", 0.0))
     << ",\"injected\":" << json_number(report.metrics.value_or("resilience.injected", 0.0))
     << ",\"recovered\":" << json_number(report.metrics.value_or("resilience.recovered", 0.0))
     << ",\"retried\":" << json_number(report.metrics.value_or("resilience.retried", 0.0))
     << '}';
  os << ",\"schema\":\"rh-run-report/v1\"";
  os << ",\"seed\":" << report.seed;
  if (include_wall) {
    os << ",\"shard_latency_ms\":";
    write_latency_json(os, summarize_latencies(wall_samples(report.timings)));
  }
  os << ",\"shards\":{\"done\":" << report.shards_done << ",\"failed\":" << report.shards_failed
     << ",\"fatal\":" << report.shards_fatal << ",\"retried\":" << report.shards_retried
     << ",\"skipped\":" << report.shards_skipped << ",\"total\":" << report.shards_total << '}';
  if (include_wall) {
    std::vector<ShardTiming> slowest = report.timings;
    std::sort(slowest.begin(), slowest.end(), [](const ShardTiming& a, const ShardTiming& b) {
      return a.wall_ms != b.wall_ms ? a.wall_ms > b.wall_ms : a.shard < b.shard;
    });
    if (slowest.size() > 5) slowest.resize(5);
    os << ",\"slowest_shards\":[";
    for (std::size_t i = 0; i < slowest.size(); ++i) {
      if (i != 0) os << ',';
      os << "{\"attempts\":" << slowest[i].attempts << ",\"shard\":" << slowest[i].shard
         << ",\"span\":\"" << span_hex(slowest[i].span)
         << "\",\"wall_ms\":" << wall_text(slowest[i].wall_ms) << '}';
    }
    os << ']';
  }
  os << ",\"spans\":{\"dropped\":" << report.spans_dropped
     << ",\"total\":" << report.spans_total << '}';
  os << ",\"timings\":[";
  for (std::size_t i = 0; i < report.timings.size(); ++i) {
    const ShardTiming& t = report.timings[i];
    if (i != 0) os << ',';
    os << "{\"attempts\":" << t.attempts << ",\"device_cycles\":" << t.device_cycles
       << ",\"shard\":" << t.shard << ",\"span\":\"" << span_hex(t.span) << '"';
    if (include_wall) os << ",\"wall_ms\":" << wall_text(t.wall_ms);
    os << '}';
  }
  os << ']';
  if (include_wall) {
    // Ring accounting depends on how many worker rings were absorbed (one
    // per rig), so it stays out of the deterministic projection.
    os << ",\"trace\":{\"dropped\":" << report.trace.dropped
       << ",\"recorded\":" << report.trace.recorded << ",\"retained\":" << report.trace.retained
       << '}';
    os << ",\"worker_utilization\":" << json_number(report.worker_utilization());
  }
  os << '}';
}

void write_perf_baseline_json(std::ostream& os, const RunReport& report, std::uint32_t stride) {
  // Keys sorted; schema tagged so check_perf.py can refuse foreign files.
  os << "{\"bench\":\"campaign_fig4\"";
  os << ",\"bringup_device_cycles\":" << report.bringup_device_cycles();
  os << ",\"commands\":" << report.commands();
  os << ",\"commands_per_host_second\":" << json_number(report.commands_per_host_second());
  os << ",\"device_cycles\":" << report.device_cycles();
  os << ",\"device_cycles_per_host_second\":"
     << json_number(report.device_cycles_per_host_second());
  os << ",\"elapsed_s\":" << json_number(report.elapsed_wall_ms * 1e-3);
  os << ",\"jobs\":" << report.jobs;
  os << ",\"phases\":";
  report.profile.write_json(os, true);
  os << ",\"records\":" << report.records;
  os << ",\"schema\":\"rh-perf-baseline/v1\"";
  os << ",\"seed\":" << report.seed;
  os << ",\"stride\":" << stride;
  os << "}\n";
}

void render_report_text(std::ostream& os, const RunReport& report) {
  os << "=== campaign run report: " << report.campaign << " (seed " << report.seed << ") ===\n";
  os << "shards: " << report.shards_done << "/" << report.shards_total << " run";
  if (report.shards_skipped > 0) os << ", " << report.shards_skipped << " from checkpoint";
  if (report.shards_retried > 0) os << ", " << report.shards_retried << " retried";
  if (report.shards_failed > 0) {
    os << ", " << report.shards_failed << " FAILED (" << report.shards_fatal << " fatal)";
  }
  os << "  |  records: " << report.records << '\n';
  os << "elapsed: " << common::fmt_double(report.elapsed_wall_ms * 1e-3, 2) << " s on "
     << report.jobs << " worker" << (report.jobs == 1 ? "" : "s")
     << "  |  utilization: " << common::fmt_percent(report.worker_utilization()) << '\n';
  os << "throughput: " << common::fmt_double(report.commands_per_host_second(), 0)
     << " commands/s  |  "
     << common::fmt_double(report.device_cycles_per_host_second() * 1e-6, 1)
     << " M device-cycles per host-second\n";

  const double total_wall = std::max(report.elapsed_wall_ms, 1e-9);
  common::Table phases({"phase", "group", "calls", "device cycles", "wall ms", "% of elapsed"});
  struct Row {
    Phase phase;
    const char* group;
  };
  const Row rows[] = {
      {Phase::kUpload, "host"},      {Phase::kExecute, "host"},
      {Phase::kDrain, "host"},       {Phase::kRecover, "host"},
      {Phase::kThermal, "host"},     {Phase::kRigBuild, "campaign"},
      {Phase::kShardRun, "campaign"}, {Phase::kCheckpoint, "campaign"},
      {Phase::kIdle, "campaign"},    {Phase::kReport, "campaign"},
  };
  for (const auto& r : rows) {
    const PhaseStat& s = report.profile.stat(r.phase);
    phases.add_row({std::string(to_string(r.phase)), r.group, std::to_string(s.calls),
                    fmt_cycles(s.device_cycles), common::fmt_double(s.wall_ms, 1),
                    common::fmt_percent(s.wall_ms / total_wall)});
  }
  os << "\nphase breakdown (host-level phases nest inside campaign-level ones):\n";
  phases.print(os);

  const LatencySummary lat = summarize_latencies(wall_samples(report.timings));
  if (lat.count > 0) {
    common::Table latency({"shards", "min", "p50", "p90", "p99", "max", "mean"});
    latency.add_row({std::to_string(lat.count), common::fmt_double(lat.min, 1),
                     common::fmt_double(lat.p50, 1), common::fmt_double(lat.p90, 1),
                     common::fmt_double(lat.p99, 1), common::fmt_double(lat.max, 1),
                     common::fmt_double(lat.mean, 1)});
    os << "\nper-shard latency (wall ms):\n";
    latency.print(os);
    common::render_boxplot(os, {{"shard ms", common::box_stats(wall_samples(report.timings))}},
                           64, "wall ms");

    std::vector<ShardTiming> slowest = report.timings;
    std::sort(slowest.begin(), slowest.end(), [](const ShardTiming& a, const ShardTiming& b) {
      return a.wall_ms != b.wall_ms ? a.wall_ms > b.wall_ms : a.shard < b.shard;
    });
    if (slowest.size() > 5) slowest.resize(5);
    common::Table slow({"slowest shard", "wall ms", "device cycles", "attempts", "span"});
    for (const auto& t : slowest) {
      slow.add_row({std::to_string(t.shard), common::fmt_double(t.wall_ms, 1),
                    fmt_cycles(t.device_cycles), std::to_string(t.attempts), span_hex(t.span)});
    }
    os << '\n';
    slow.print(os);
  }

  const double injected = report.metrics.value_or("resilience.injected", 0.0);
  if (injected > 0.0) {
    os << "\nfault storm: " << common::fmt_double(injected, 0) << " injected, "
       << common::fmt_double(report.metrics.value_or("resilience.recovered", 0.0), 0)
       << " recovered, "
       << common::fmt_double(report.metrics.value_or("resilience.aborted", 0.0), 0)
       << " aborted, "
       << common::fmt_double(report.metrics.value_or("resilience.retried", 0.0), 0)
       << " backoff retries\n";
  }
}

}  // namespace rh::profiling
