#include "telemetry/stream.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace rh::telemetry {

namespace {

constexpr const char* kStreamKind = "rh-metrics-stream";
// v2 = CRC-framed lines. Readers accept v1 (bare payloads) forever.
constexpr std::uint64_t kStreamVersion = 2;

/// Fixed-width hex, mirroring the journal header's config_hash rendering.
std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

std::string ms_text(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

std::string header_line(const MetricsStreamHeader& header) {
  return std::string("{\"kind\":\"") + kStreamKind +
         "\",\"version\":" + std::to_string(kStreamVersion) +
         ",\"seed\":" + std::to_string(header.seed) + ",\"config_hash\":\"" +
         hash_hex(header.config_hash) + "\",\"shards\":" + std::to_string(header.shards) +
         ",\"jobs\":" + std::to_string(header.jobs) +
         ",\"cycle_cadence\":" + std::to_string(header.cycle_cadence) +
         ",\"wall_cadence_ms\":" + ms_text(header.wall_cadence_ms) + "}";
}

void append_counter_object(std::string& out, const CounterValues& values) {
  out += '{';
  bool first = true;
  for (const auto& [name, value] : values) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + std::to_string(value);
  }
  out += '}';
}

}  // namespace

MetricsStreamWriter::MetricsStreamWriter(const std::string& path,
                                         const MetricsStreamHeader& header,
                                         resilience::StorageFaultInjector* injector)
    : path_(path) {
  file_ = std::make_unique<resilience::DurableFile>(path, "metrics stream",
                                                    /*truncate=*/true, injector);
  // The header write throws on failure (Storage- or ConfigError): a stream
  // whose identity line never landed is for the *caller* to shrug off.
  file_->write_line(resilience::frame_line(header_line(header)));
}

MetricsStreamWriter::~MetricsStreamWriter() = default;

void MetricsStreamWriter::append(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!storage_error_.empty()) return;  // already dark
  try {
    file_->write_line(resilience::frame_line(line));
  } catch (const common::StorageError& e) {
    // Telemetry must never cost the campaign a shard: go dark, remember
    // why, and let the owner surface it (campaign storage_errors, serve
    // /healthz degraded).
    storage_error_ = e.what();
    file_.reset();
  }
}

bool MetricsStreamWriter::degraded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return !storage_error_.empty();
}

std::string MetricsStreamWriter::storage_error() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return storage_error_;
}

std::string format_cycles_sample(std::uint64_t shard, std::uint32_t attempt, std::uint32_t seq,
                                 std::uint64_t cycle, const CounterValues& deltas) {
  std::string line = "{\"sample\":\"cycles\",\"shard\":" + std::to_string(shard) +
                     ",\"attempt\":" + std::to_string(attempt) +
                     ",\"seq\":" + std::to_string(seq) + ",\"cycle\":" + std::to_string(cycle) +
                     ",\"deltas\":";
  append_counter_object(line, deltas);
  line += '}';
  return line;
}

std::string format_wall_sample(double t_ms, const CounterValues& counter_deltas,
                               const std::vector<StreamWorkerStatus>& workers) {
  std::string line = "{\"sample\":\"wall\",\"t_ms\":" + ms_text(t_ms) + ",\"counters\":";
  append_counter_object(line, counter_deltas);
  line += ",\"workers\":[";
  bool first = true;
  for (const auto& w : workers) {
    if (!first) line += ',';
    first = false;
    line += "{\"busy_ms\":" + ms_text(w.busy_ms) + ",\"done\":" + std::to_string(w.done) +
            ",\"shard\":" + std::to_string(w.shard) + '}';
  }
  line += "]}";
  return line;
}

std::string format_final_sample(double t_ms, const CounterValues& counters, std::uint64_t done,
                                std::uint64_t failed, std::uint64_t skipped,
                                std::uint64_t total) {
  std::string line = "{\"sample\":\"final\",\"t_ms\":" + ms_text(t_ms) + ",\"counters\":";
  append_counter_object(line, counters);
  line += ",\"shards\":{\"done\":" + std::to_string(done) +
          ",\"failed\":" + std::to_string(failed) + ",\"skipped\":" + std::to_string(skipped) +
          ",\"total\":" + std::to_string(total) + "}}";
  return line;
}

CounterValues counter_values(const MetricsRegistry& registry) {
  CounterValues values;
  for (const auto& entry : registry.snapshot().entries) {
    if (entry.kind != MetricKind::kCounter) continue;
    values[entry.name] = static_cast<std::uint64_t>(entry.value);
  }
  return values;
}

MetricsSampler::MetricsSampler(MetricsStreamWriter& writer, const MetricsRegistry& registry,
                               std::uint64_t cadence, std::uint64_t shard, std::uint32_t attempt,
                               std::uint64_t base_cycle)
    : writer_(&writer),
      registry_(&registry),
      cadence_(cadence > 0 ? cadence : 1),
      shard_(shard),
      attempt_(attempt),
      base_(base_cycle),
      next_due_(cadence_),
      last_(counter_values(registry)) {}

void MetricsSampler::sample_if_due(std::uint64_t now_cycle) {
  const std::uint64_t rel = now_cycle - base_;
  if (rel < next_due_) return;
  emit(rel);
  // One sample per crossing, stamped at the cycle the host actually reached
  // (deterministic: the sampling sites are program boundaries).
  next_due_ = (rel / cadence_ + 1) * cadence_;
}

void MetricsSampler::finish(std::uint64_t now_cycle) { emit(now_cycle - base_); }

void MetricsSampler::emit(std::uint64_t rel_cycle) {
  const CounterValues now = counter_values(*registry_);
  CounterValues deltas;
  for (const auto& [name, value] : now) {
    const auto it = last_.find(name);
    const std::uint64_t before = it != last_.end() ? it->second : 0;
    if (value > before) deltas[name] = value - before;
  }
  writer_->append(format_cycles_sample(shard_, attempt_, seq_, rel_cycle, deltas));
  ++seq_;
  last_ = now;
}

}  // namespace rh::telemetry
