#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <ostream>
#include <string>

#include "common/ascii_plot.hpp"
#include "common/assert.hpp"
#include "telemetry/span.hpp"

namespace rh::telemetry {

namespace {

std::string lane_label(std::uint32_t channel, std::uint32_t pc) {
  return "ch" + std::to_string(channel) + ".pc" + std::to_string(pc);
}

std::string counter_name(TraceCommand c) {
  return "cmd." + std::string(to_string(c));
}

}  // namespace

Telemetry::Telemetry(TelemetryConfig config)
    : config_(config), trace_(config.trace_capacity) {
  RH_EXPECTS(config_.channels > 0 && config_.pseudo_channels > 0 && config_.banks > 0);
  bank_acts_.assign(static_cast<std::size_t>(config_.channels) * config_.pseudo_channels *
                        config_.banks,
                    0);
  for (std::size_t i = 0; i < kTraceCommandCount; ++i) {
    cmd_counters_[i] = &registry_.counter(counter_name(static_cast<TraceCommand>(i)));
  }
  trr_proprietary_ = &registry_.counter("trr.proprietary_triggers");
  trr_documented_ = &registry_.counter("trr.documented_triggers");
  flip_rowhammer_bits_ = &registry_.counter("flip.rowhammer_bits");
  flip_retention_bits_ = &registry_.counter("flip.retention_bits");
  flip_events_counter_ = &registry_.counter("flip.events");
  flip_size_hist_ = &registry_.histogram("flip.bits_per_event", 0.0, 64.0, 16);
  ref_pointers_.reserve(static_cast<std::size_t>(config_.channels) * config_.pseudo_channels);
  for (std::uint32_t ch = 0; ch < config_.channels; ++ch) {
    for (std::uint32_t pc = 0; pc < config_.pseudo_channels; ++pc) {
      ref_pointers_.push_back(&registry_.gauge("ref.pointer." + lane_label(ch, pc)));
    }
  }
}

std::size_t Telemetry::heat_index(std::uint32_t channel, std::uint32_t pseudo_channel,
                                  std::uint32_t bank) const {
  RH_EXPECTS(channel < config_.channels && pseudo_channel < config_.pseudo_channels &&
             bank < config_.banks);
  return (static_cast<std::size_t>(channel) * config_.pseudo_channels + pseudo_channel) *
             config_.banks +
         bank;
}

void Telemetry::on_command(TraceCommand cmd, std::uint64_t cycle, std::uint32_t channel,
                           std::uint32_t pseudo_channel, std::uint32_t bank, std::uint32_t row,
                           std::uint32_t arg) {
  cmd_counters_[static_cast<std::size_t>(cmd)]->add();
  if (cmd == TraceCommand::kAct) ++bank_acts_[heat_index(channel, pseudo_channel, bank)];
  if (config_.trace_enabled) {
    trace_.push({cycle, row, arg, static_cast<std::uint8_t>(channel),
                 static_cast<std::uint8_t>(pseudo_channel), static_cast<std::uint8_t>(bank), cmd});
  }
}

void Telemetry::on_hammer(std::uint64_t end_cycle, std::uint32_t channel,
                          std::uint32_t pseudo_channel, std::uint32_t bank, std::uint32_t row,
                          std::uint64_t acts) {
  cmd_counters_[static_cast<std::size_t>(TraceCommand::kAct)]->add(acts);
  bank_acts_[heat_index(channel, pseudo_channel, bank)] += acts;
  if (config_.trace_enabled) {
    trace_.push({end_cycle, row, static_cast<std::uint32_t>(std::min<std::uint64_t>(
                                     acts, 0xffffffffULL)),
                 static_cast<std::uint8_t>(channel), static_cast<std::uint8_t>(pseudo_channel),
                 static_cast<std::uint8_t>(bank), TraceCommand::kHammer});
  }
}

void Telemetry::on_trr_trigger(std::uint64_t cycle, std::uint32_t channel,
                               std::uint32_t pseudo_channel, std::uint32_t bank,
                               std::uint32_t logical_row, bool documented) {
  (documented ? trr_documented_ : trr_proprietary_)->add();
  if (trr_events_.size() < config_.max_trr_events) {
    trr_events_.push_back({cycle, logical_row, static_cast<std::uint8_t>(channel),
                           static_cast<std::uint8_t>(pseudo_channel),
                           static_cast<std::uint8_t>(bank), documented});
  }
  if (config_.trace_enabled) {
    trace_.push({cycle, logical_row, documented ? 1u : 0u, static_cast<std::uint8_t>(channel),
                 static_cast<std::uint8_t>(pseudo_channel), static_cast<std::uint8_t>(bank),
                 TraceCommand::kTrrTrigger});
  }
}

void Telemetry::on_bit_flips(std::uint64_t cycle, std::uint32_t channel,
                             std::uint32_t pseudo_channel, std::uint32_t bank,
                             std::uint32_t physical_row, std::uint32_t rowhammer_bits,
                             std::uint32_t retention_bits, double disturbance) {
  flip_rowhammer_bits_->add(rowhammer_bits);
  flip_retention_bits_->add(retention_bits);
  flip_events_counter_->add();
  flip_size_hist_->observe(static_cast<double>(rowhammer_bits + retention_bits));
  if (flip_events_.size() < config_.max_flip_events) {
    flip_events_.push_back({cycle, physical_row, rowhammer_bits, retention_bits, disturbance,
                            static_cast<std::uint8_t>(channel),
                            static_cast<std::uint8_t>(pseudo_channel),
                            static_cast<std::uint8_t>(bank)});
  }
  if (config_.trace_enabled) {
    trace_.push({cycle, physical_row, rowhammer_bits + retention_bits,
                 static_cast<std::uint8_t>(channel), static_cast<std::uint8_t>(pseudo_channel),
                 static_cast<std::uint8_t>(bank), TraceCommand::kBitFlip});
  }
}

void Telemetry::on_refresh_pointer(std::uint32_t channel, std::uint32_t pseudo_channel,
                                   std::uint32_t pointer) {
  const std::size_t lane = static_cast<std::size_t>(channel) * config_.pseudo_channels +
                           pseudo_channel;
  RH_EXPECTS(lane < ref_pointers_.size());
  ref_pointers_[lane]->set(static_cast<double>(pointer));
}

std::uint64_t Telemetry::bank_act_count(std::uint32_t channel, std::uint32_t pseudo_channel,
                                        std::uint32_t bank) const {
  return bank_acts_[heat_index(channel, pseudo_channel, bank)];
}

std::uint64_t Telemetry::total_acts() const {
  std::uint64_t sum = 0;
  for (const auto v : bank_acts_) sum += v;
  return sum;
}

MetricsSnapshot Telemetry::snapshot() const {
  MetricsSnapshot snap = registry_.snapshot();
  // Synthesize the drop counter into its sorted position: the registry
  // itself stays untouched (snapshot() is const and hot paths must not
  // allocate a counter per export).
  SnapshotEntry entry;
  entry.name = "telemetry.trace_dropped";
  entry.kind = MetricKind::kCounter;
  entry.value = static_cast<double>(trace_dropped_total());
  const auto pos = std::lower_bound(
      snap.entries.begin(), snap.entries.end(), entry,
      [](const SnapshotEntry& a, const SnapshotEntry& b) { return a.name < b.name; });
  snap.entries.insert(pos, std::move(entry));
  return snap;
}

void Telemetry::write_metrics_json(std::ostream& os) const {
  os << "{\"metrics\":";
  snapshot().write_json(os);
  os << ",\"bank_act_heatmap\":{\"channels\":" << config_.channels
     << ",\"pseudo_channels\":" << config_.pseudo_channels << ",\"banks\":" << config_.banks
     << ",\"counts\":[";
  for (std::size_t i = 0; i < bank_acts_.size(); ++i) {
    if (i != 0) os << ',';
    os << bank_acts_[i];
  }
  os << "]},\"trace\":{\"recorded\":" << trace_.total_recorded()
     << ",\"retained\":" << trace_.size() << ",\"dropped\":" << trace_dropped_total()
     << "},\"events\":{\"trr\":" << trr_events_.size() << ",\"flip\":" << flip_events_.size()
     << "}}";
}

void Telemetry::write_chrome_trace(std::ostream& os, const SpanSheet* spans) const {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  write_chrome_trace_events(os, trace_.in_order(), config_.ns_per_cycle, first);
  if (spans != nullptr) write_chrome_span_events(os, spans->spans(), first);
  os << "]}";
}

void Telemetry::render_act_heatmap(std::ostream& os) const {
  std::vector<std::vector<double>> grid;
  std::vector<std::string> labels;
  grid.reserve(static_cast<std::size_t>(config_.channels) * config_.pseudo_channels);
  for (std::uint32_t ch = 0; ch < config_.channels; ++ch) {
    for (std::uint32_t pc = 0; pc < config_.pseudo_channels; ++pc) {
      std::vector<double> lane(config_.banks);
      for (std::uint32_t b = 0; b < config_.banks; ++b) {
        lane[b] = static_cast<double>(bank_act_count(ch, pc, b));
      }
      grid.push_back(std::move(lane));
      labels.push_back(lane_label(ch, pc));
    }
  }
  common::render_heatmap(os, grid, labels, "per-bank ACT counts (columns = banks)");
}

void Telemetry::absorb(const Telemetry& other) {
  RH_EXPECTS(other.config_.channels == config_.channels &&
             other.config_.pseudo_channels == config_.pseudo_channels &&
             other.config_.banks == config_.banks);
  registry_.merge_from(other.registry_);
  for (std::size_t i = 0; i < bank_acts_.size(); ++i) bank_acts_[i] += other.bank_acts_[i];
  for (const auto& e : other.trr_events_) {
    if (trr_events_.size() >= config_.max_trr_events) break;
    trr_events_.push_back(e);
  }
  for (const auto& e : other.flip_events_) {
    if (flip_events_.size() >= config_.max_flip_events) break;
    flip_events_.push_back(e);
  }
  if (config_.trace_enabled) {
    for (const auto& e : other.trace_.in_order()) trace_.push(e);
  }
  // Events the absorbed sink had already lost stay lost; carry the count so
  // the aggregate's trace accounting covers the whole fleet.
  absorbed_dropped_ += other.trace_dropped_total();
}

void Telemetry::reset() {
  registry_.reset();
  trace_.clear();
  absorbed_dropped_ = 0;
  trr_events_.clear();
  flip_events_.clear();
  std::fill(bank_acts_.begin(), bank_acts_.end(), 0);
}

}  // namespace rh::telemetry
