// Causal span tracing for the campaign stack: every unit of work — the
// campaign itself, each shard, each attempt on a shard, and each host phase
// (upload/execute/drain/recover/thermal) inside an attempt — becomes a Span
// with a parent link, so a finished run carries a forest
//
//   campaign -> shard -> attempt -> host phase -> fault/recovery marks
//
// that attributes cost causally: a slow shard's row in the run report links
// (by span id) to the exact attempts, retries, and recoveries that made it
// slow.
//
// Determinism: span ids are pure functions of (shard, attempt, sequence) —
// see span_id() — so the same sweep produces the same tree regardless of
// --jobs or scheduling. Wall-clock begin/end stamps are host time relative
// to the campaign epoch and are *not* deterministic; the cycle stamps are.
//
// Threading model mirrors Profile/MetricsRegistry: each campaign worker
// fills a private SpanSheet through a per-shard TraceContext and the
// campaign merges the sheets (merge_from) under its completion lock.
//
// Export: write_chrome_span_events emits each span as a Chrome trace-event
// async begin/end pair ("b"/"e") on the host wall-clock axis, carrying the
// parent id, shard, attempt, and consumed device cycles in args, so the
// whole tree loads into chrome://tracing / Perfetto next to the command
// slices (which live on the device-time axis).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace rh::telemetry {

/// What a span covers. kFault/kRecovery are zero-length marks (arg =
/// resilience::FaultKind); everything else is a real interval.
enum class SpanKind : std::uint8_t {
  kCampaign = 0,  ///< the whole run (root, exactly one per campaign)
  kShard,         ///< one shard, all attempts included
  kAttempt,       ///< one attempt on a shard (retries open fresh attempts)
  kUpload,        ///< host phase: program/wide-register PCIe upload
  kExecute,       ///< host phase: executor running a program
  kDrain,         ///< host phase: readback FIFO drain + CRC verify
  kRecover,       ///< host phase: fault recovery action
  kThermal,       ///< host phase: thermal settle / temperature guard
  kFault,         ///< mark: a fault was detected (arg = FaultKind)
  kRecovery,      ///< mark: the fault was healed or aborted (arg = FaultKind)
};

inline constexpr std::size_t kSpanKindCount = 10;

[[nodiscard]] constexpr std::string_view to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kCampaign: return "campaign";
    case SpanKind::kShard: return "shard";
    case SpanKind::kAttempt: return "attempt";
    case SpanKind::kUpload: return "upload";
    case SpanKind::kExecute: return "execute";
    case SpanKind::kDrain: return "drain";
    case SpanKind::kRecover: return "recover";
    case SpanKind::kThermal: return "thermal";
    case SpanKind::kFault: return "fault";
    case SpanKind::kRecovery: return "recovery";
  }
  return "?";
}

/// The root campaign span's id. Shard-derived ids start at (0+1)<<32, so
/// the root can never collide with them.
inline constexpr std::uint64_t kCampaignSpanId = 1;

/// Deterministic span id: shard in the high bits, attempt (1-based; 0 for
/// the shard span itself) in the middle, per-attempt sequence in the low 24
/// bits. A pure function of the tree position — identical across --jobs.
[[nodiscard]] constexpr std::uint64_t span_id(std::uint64_t shard, std::uint32_t attempt,
                                              std::uint32_t seq) {
  return ((shard + 1) << 32) | (static_cast<std::uint64_t>(attempt & 0xffu) << 24) |
         (seq & 0xffffffu);
}

/// One traced span. `parent` = 0 marks the root.
struct Span {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint64_t shard = 0;
  std::uint32_t attempt = 0;  ///< 1-based; 0 for campaign/shard spans
  SpanKind kind = SpanKind::kCampaign;
  std::uint32_t arg = 0;  ///< FaultKind for kFault/kRecovery marks
  /// Device-clock stamps. Host phases carry the absolute host clock at
  /// open/close; campaign-level spans carry 0 .. cycles-consumed. Either
  /// way end_cycle - begin_cycle is the cycles the span consumed.
  std::uint64_t begin_cycle = 0;
  std::uint64_t end_cycle = 0;
  /// Host wall clock, milliseconds since the campaign epoch.
  double begin_wall_ms = 0.0;
  double end_wall_ms = 0.0;
  bool open = false;  ///< still open (campaign killed mid-span)
};

/// Host-phase spans retained per attempt before the collector starts
/// dropping (structural spans — shard/attempt — and fault/recovery marks
/// are never dropped). Bounds span memory for huge campaigns the same way
/// TraceRing bounds command events.
inline constexpr std::uint32_t kSpanBudgetPerAttempt = 512;

/// A worker-private span collector. Not thread-safe; the campaign merges
/// sheets under its completion lock, mirroring Profile/Telemetry.
class SpanSheet {
public:
  /// Appends a span and returns its index (stable until merge/clear).
  std::size_t add(const Span& span);
  [[nodiscard]] Span& at(std::size_t index) { return spans_[index]; }
  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  /// Host-phase spans dropped by per-attempt budgets (TraceContext reports
  /// its drops here; merge_from accumulates).
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  void note_dropped(std::uint64_t n = 1) { dropped_ += n; }

  /// Appends every span (and the drop count) of `other`.
  void merge_from(const SpanSheet& other);
  /// Sorts into the canonical presentation order: ascending span id, which
  /// groups by shard, then attempt, then open sequence — and always places
  /// a parent before its children. Call once after the final merge.
  void sort_canonical();
  void clear();

private:
  std::vector<Span> spans_;
  std::uint64_t dropped_ = 0;
};

/// Per-shard span builder, used single-threaded by the worker that owns the
/// shard. Open spans nest: open() parents the new span under the innermost
/// open span (or under the shard span, or `parent` before the shard span
/// opens). The BenderHost holds a TraceContext* (null by default) and wraps
/// its phases in SpanScope, so hosts outside a campaign pay one pointer
/// test per phase.
class TraceContext {
public:
  /// `epoch` anchors the wall-clock stamps (pass the campaign run start so
  /// every worker's spans share one timeline).
  TraceContext(SpanSheet& sheet, std::uint64_t shard,
               std::chrono::steady_clock::time_point epoch,
               std::uint64_t parent = kCampaignSpanId);

  /// Opens a span at `cycle`; returns its id (0 when the per-attempt budget
  /// is exhausted — close(0) is a no-op, the drop is accounted).
  std::uint64_t open(SpanKind kind, std::uint64_t cycle);
  /// Closes the span `id` (innermost-first; out-of-order closes unwind the
  /// stack to the matching span, closing skipped spans at the same cycle).
  void close(std::uint64_t id, std::uint64_t cycle);
  /// Records a zero-length mark (fault/recovery) under the innermost open
  /// span. Marks are never dropped.
  void mark(SpanKind kind, std::uint64_t cycle, std::uint32_t arg);
  /// Starts attempt `attempt` (1-based): resets the sequence counter and
  /// the per-attempt budget. Call before opening the kAttempt span.
  void set_attempt(std::uint32_t attempt);

  [[nodiscard]] std::uint64_t shard() const { return shard_; }
  [[nodiscard]] std::uint32_t attempt() const { return attempt_; }

private:
  [[nodiscard]] double wall_now_ms() const;
  [[nodiscard]] std::uint64_t innermost_parent() const;

  SpanSheet* sheet_;
  std::uint64_t shard_;
  std::uint64_t parent_;
  std::chrono::steady_clock::time_point epoch_;
  std::uint32_t attempt_ = 0;
  std::uint32_t seq_ = 0;
  std::uint32_t budget_ = kSpanBudgetPerAttempt;
  std::vector<std::size_t> stack_;  ///< indices of open spans in sheet_
};

/// RAII span: opens `kind` at construction, closes at destruction, sampling
/// `*cycle_clock` (may be null -> cycle 0) at both ends. A null `ctx` makes
/// the scope free.
class SpanScope {
public:
  SpanScope(TraceContext* ctx, SpanKind kind, const std::uint64_t* cycle_clock)
      : ctx_(ctx), cycle_clock_(cycle_clock) {
    if (ctx_ != nullptr) {
      id_ = ctx_->open(kind, cycle_clock_ != nullptr ? *cycle_clock_ : 0);
    }
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() {
    if (ctx_ != nullptr) ctx_->close(id_, cycle_clock_ != nullptr ? *cycle_clock_ : 0);
  }

private:
  TraceContext* ctx_;
  const std::uint64_t* cycle_clock_;
  std::uint64_t id_ = 0;
};

/// Writes the spans as Chrome trace-event async "b"/"e" pairs (marks as
/// instant "n" events) into an already-open traceEvents array; `first`
/// tracks comma state across writers. pid 1000 groups them as a "campaign
/// spans" process, tid = shard, ts/dur on the host wall-clock axis.
void write_chrome_span_events(std::ostream& os, const std::vector<Span>& spans, bool& first);

/// Standalone Chrome trace document containing only the spans.
void write_chrome_spans(std::ostream& os, const SpanSheet& sheet);

}  // namespace rh::telemetry
