// The live metrics time-series: rh-metrics-stream/v1, an fsync'd JSONL file
// written *during* a campaign (alongside the checkpoint journal) so a
// monitor — tools/rh_tail — can watch progress, throughput, and fault rates
// without waiting for the end-of-run report.
//
// Layout (one JSON document per line):
//
//   {"kind":"rh-metrics-stream","version":1,"seed":...,
//    "config_hash":"<16 hex digits>","shards":N,"jobs":J,
//    "cycle_cadence":C,"wall_cadence_ms":W}                  <- header, fsync'd
//   {"sample":"cycles","shard":S,"attempt":A,"seq":Q,
//    "cycle":C,"deltas":{"cmd.act":123,...}}                 <- per-worker,
//                                              device-cycle cadence
//   {"sample":"wall","t_ms":...,"counters":{...},
//    "workers":[{"busy_ms":...,"done":K,"shard":I},...]}     <- campaign
//                                              aggregate, wall cadence
//   {"sample":"final","t_ms":...,"counters":{...},
//    "shards":{"done":..,"failed":..,"skipped":..,"total":..}}  <- exactly one
//
// Determinism: the cycles series samples each worker sink's *counter
// deltas* at device-cycle boundaries within one shard attempt — cycle
// stamps are relative to the attempt's start, deltas are relative to the
// previous sample — so every field is a pure function of the shard, not of
// scheduling. Sorting the cycles lines by (shard, attempt, seq) therefore
// yields a byte-identical series for any --jobs (the canonicalization rule
// tests/verify_properties_test.cpp pins). Wall samples and the final sample
// carry host time and are not deterministic.
//
// Durability mirrors the journal: header fsync'd up front, every sample
// line flushed+fsync'd (since v2 each line carries the CRC-32 frame from
// resilience/storage.hpp; v1 streams stay readable), and readers tolerate a
// torn trailing line and skip corrupt mid-file lines.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "resilience/storage.hpp"
#include "telemetry/metrics.hpp"

namespace rh::telemetry {

/// Identity + cadence of one stream, written into the header line.
struct MetricsStreamHeader {
  std::uint64_t seed = 0;
  std::uint64_t config_hash = 0;
  std::uint64_t shards = 0;
  unsigned jobs = 1;
  std::uint64_t cycle_cadence = 0;
  double wall_cadence_ms = 0.0;
};

/// Appends sample lines to the stream file. append() is internally locked:
/// every campaign worker and the wall-cadence monitor write through one
/// writer.
///
/// Storage-failure policy: the stream is advisory telemetry, never results
/// — so a failed write (real or injected through `injector`) must not cost
/// the campaign a shard. The constructor still throws (ConfigError for an
/// unopenable path, StorageError if the header cannot land: a stream that
/// never existed is a caller decision), but append() degrades instead:
/// after the first StorageError the writer goes dark, drops every later
/// sample, and reports the event through degraded()/storage_error().
class MetricsStreamWriter {
public:
  /// Creates (truncating any previous file) and writes an fsync'd header.
  /// `injector` may be null and must outlive the writer.
  MetricsStreamWriter(const std::string& path, const MetricsStreamHeader& header,
                      resilience::StorageFaultInjector* injector = nullptr);
  ~MetricsStreamWriter();

  MetricsStreamWriter(const MetricsStreamWriter&) = delete;
  MetricsStreamWriter& operator=(const MetricsStreamWriter&) = delete;

  /// Writes one pre-formatted sample line (CRC-framed), flushed and
  /// fsync'd. Never throws on storage failure — see the class comment.
  void append(const std::string& line);

  /// True once a storage failure has silenced the stream.
  [[nodiscard]] bool degraded() const;
  /// The first storage failure's message ("" while healthy).
  [[nodiscard]] std::string storage_error() const;

private:
  std::unique_ptr<resilience::DurableFile> file_;
  std::string path_;
  std::string storage_error_;
  mutable std::mutex mutex_;
};

/// One worker's status inside a wall sample.
struct StreamWorkerStatus {
  double busy_ms = 0.0;       ///< wall time spent inside shards (incl. in flight)
  std::uint64_t done = 0;     ///< shards this worker completed
  std::int64_t shard = -1;    ///< shard in flight, -1 when idle
};

/// Counter name -> delta/value pairs, sorted by name (map iteration order).
using CounterValues = std::map<std::string, std::uint64_t>;

/// Formats one cycles-cadence sample line (no newline). Zero deltas are
/// omitted so quiet intervals stay small; an empty deltas object is legal.
[[nodiscard]] std::string format_cycles_sample(std::uint64_t shard, std::uint32_t attempt,
                                               std::uint32_t seq, std::uint64_t cycle,
                                               const CounterValues& deltas);

/// Formats one wall-cadence campaign sample line (no newline).
[[nodiscard]] std::string format_wall_sample(double t_ms, const CounterValues& counter_deltas,
                                             const std::vector<StreamWorkerStatus>& workers);

/// Formats the closing sample line (no newline); `counters` are absolutes.
[[nodiscard]] std::string format_final_sample(double t_ms, const CounterValues& counters,
                                              std::uint64_t done, std::uint64_t failed,
                                              std::uint64_t skipped, std::uint64_t total);

/// Snapshot of `registry`'s counters as integer values.
[[nodiscard]] CounterValues counter_values(const MetricsRegistry& registry);

/// Per-attempt cycles-cadence sampler: bound to one worker sink's registry
/// and one (shard, attempt), it emits a cycles sample whenever the host
/// clock has advanced `cadence` cycles past the previous sample. The
/// BenderHost calls sample_if_due() after each program (the deterministic
/// sampling sites); the campaign calls finish() when the attempt ends so
/// every attempt's series closes with a final sample.
class MetricsSampler {
public:
  MetricsSampler(MetricsStreamWriter& writer, const MetricsRegistry& registry,
                 std::uint64_t cadence, std::uint64_t shard, std::uint32_t attempt,
                 std::uint64_t base_cycle);

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Emits one sample when `now_cycle` crossed the next cadence boundary.
  void sample_if_due(std::uint64_t now_cycle);
  /// Unconditionally emits the attempt's closing sample.
  void finish(std::uint64_t now_cycle);

  [[nodiscard]] std::uint32_t samples_emitted() const { return seq_; }

private:
  void emit(std::uint64_t rel_cycle);

  MetricsStreamWriter* writer_;
  const MetricsRegistry* registry_;
  std::uint64_t cadence_;
  std::uint64_t shard_;
  std::uint32_t attempt_;
  std::uint64_t base_;
  std::uint64_t next_due_;  ///< relative cycle of the next sample
  std::uint32_t seq_ = 0;
  CounterValues last_;  ///< counter values at the previous sample
};

}  // namespace rh::telemetry
