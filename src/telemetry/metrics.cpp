#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace rh::telemetry {

double histogram_quantile(double lo, double hi, const std::vector<std::uint64_t>& buckets,
                          double q) {
  std::uint64_t total = 0;
  for (const auto c : buckets) total += c;
  if (total == 0 || buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double width = (hi - lo) / static_cast<double>(buckets.size());
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const auto count = static_cast<double>(buckets[i]);
    if (count > 0.0 && cumulative + count >= target) {
      // Linear interpolation: the target rank sits `frac` of the way through
      // this bucket's samples, assumed uniform across the bucket's range.
      const double frac = std::clamp((target - cumulative) / count, 0.0, 1.0);
      return lo + width * (static_cast<double>(i) + frac);
    }
    cumulative += count;
  }
  return hi;  // q == 1 with trailing empty buckets
}

FixedHistogram::FixedHistogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  RH_EXPECTS(hi > lo);
  RH_EXPECTS(bins > 0);
  counts_.assign(bins, 0);
}

void FixedHistogram::observe(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>(std::floor((x - lo_) / width));
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  sum_ += x;
}

void FixedHistogram::merge_from(const FixedHistogram& other) {
  RH_EXPECTS(other.lo_ == lo_ && other.hi_ == hi_ && other.counts_.size() == counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  sum_ += other.sum_;
}

double FixedHistogram::quantile(double q) const {
  return histogram_quantile(lo_, hi_, counts_, q);
}

HistogramSummary FixedHistogram::summary() const {
  HistogramSummary s;
  s.count = total();
  s.sum = sum_;
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p99 = quantile(0.99);
  return s;
}

std::uint64_t FixedHistogram::total() const {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

double FixedHistogram::bucket_lower(std::size_t i) const {
  RH_EXPECTS(i < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double FixedHistogram::bucket_upper(std::size_t i) const {
  RH_EXPECTS(i < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

void FixedHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  sum_ = 0.0;
}

const SnapshotEntry* MetricsSnapshot::find(std::string_view name) const {
  for (const auto& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

double MetricsSnapshot::value_or(std::string_view name, double def) const {
  const auto* e = find(name);
  return e == nullptr ? def : e->value;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// JSON number rendering: counters print as integers, everything else via
/// ostream double formatting (finite values only; NaN/inf become 0).
std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    std::ostringstream os;
    os << static_cast<std::int64_t>(v);
    return os.str();
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void write_group(std::ostream& os, const std::vector<SnapshotEntry>& entries, MetricKind kind) {
  bool first = true;
  for (const auto& e : entries) {
    if (e.kind != kind) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(e.name) << "\":";
    if (kind == MetricKind::kHistogram) {
      // Keys in sorted order so the document is byte-stable under diffing.
      const double width = (e.hi - e.lo) / static_cast<double>(e.buckets.size());
      os << "{\"bounds\":[";
      for (std::size_t i = 0; i <= e.buckets.size(); ++i) {
        if (i != 0) os << ',';
        os << json_number(e.lo + width * static_cast<double>(i));
      }
      os << "],\"buckets\":[";
      for (std::size_t i = 0; i < e.buckets.size(); ++i) {
        if (i != 0) os << ',';
        os << e.buckets[i];
      }
      os << "],\"count\":" << json_number(e.value) << ",\"hi\":" << json_number(e.hi)
         << ",\"lo\":" << json_number(e.lo)
         << ",\"p50\":" << json_number(histogram_quantile(e.lo, e.hi, e.buckets, 0.50))
         << ",\"p90\":" << json_number(histogram_quantile(e.lo, e.hi, e.buckets, 0.90))
         << ",\"p99\":" << json_number(histogram_quantile(e.lo, e.hi, e.buckets, 0.99))
         << ",\"sum\":" << json_number(e.sum) << '}';
    } else {
      os << json_number(e.value);
    }
  }
}

}  // namespace

void MetricsSnapshot::write_json(std::ostream& os) const {
  os << "{\"counters\":{";
  write_group(os, entries, MetricKind::kCounter);
  os << "},\"gauges\":{";
  write_group(os, entries, MetricKind::kGauge);
  os << "},\"histograms\":{";
  write_group(os, entries, MetricKind::kHistogram);
  os << "}}";
}

void MetricsSnapshot::write_csv(common::CsvWriter& csv) const {
  csv.write_row({"metric", "kind", "lo", "hi", "value"});
  for (const auto& e : entries) {
    if (e.kind == MetricKind::kHistogram) {
      for (std::size_t i = 0; i < e.buckets.size(); ++i) {
        const double width = (e.hi - e.lo) / static_cast<double>(e.buckets.size());
        csv.write_row({e.name + "[" + std::to_string(i) + "]", "histogram_bucket",
                       std::to_string(e.lo + width * static_cast<double>(i)),
                       std::to_string(e.lo + width * static_cast<double>(i + 1)),
                       std::to_string(e.buckets[i])});
      }
    } else {
      csv.write_row({e.name, std::string(to_string(e.kind)), "", "", json_number(e.value)});
    }
  }
}

Counter& MetricsRegistry::counter(const std::string& name) { return counters_[name]; }

Gauge& MetricsRegistry::gauge(const std::string& name) { return gauges_[name]; }

FixedHistogram& MetricsRegistry::histogram(const std::string& name, double lo, double hi,
                                           std::size_t bins) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, FixedHistogram(lo, hi, bins)).first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.entries.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    snap.entries.push_back(
        {name, MetricKind::kCounter, static_cast<double>(c.value()), 0.0, 0.0, 0.0, {}});
  }
  for (const auto& [name, g] : gauges_) {
    snap.entries.push_back({name, MetricKind::kGauge, g.value(), 0.0, 0.0, 0.0, {}});
  }
  for (const auto& [name, h] : histograms_) {
    snap.entries.push_back({name, MetricKind::kHistogram, static_cast<double>(h.total()), h.lo(),
                            h.hi(), h.sum(), h.buckets()});
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) { return a.name < b.name; });
  return snap;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].add(c.value());
  for (const auto& [name, g] : other.gauges_) gauges_[name].set(g.value());
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h.lo(), h.hi(), h.buckets().size()).merge_from(h);
  }
}

void MetricsRegistry::reset() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

}  // namespace rh::telemetry
