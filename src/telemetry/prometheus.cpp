#include "telemetry/prometheus.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

namespace rh::telemetry {

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9')) out.insert(out.begin(), '_');
  return out;
}

std::string prometheus_label_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_number(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    std::ostringstream os;
    os << static_cast<std::int64_t>(v);
    return os.str();
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void write_prometheus_type(std::ostream& os, std::string_view name, std::string_view type) {
  os << "# TYPE " << name << ' ' << type << '\n';
}

void write_prometheus_sample(std::ostream& os, std::string_view name,
                             const PrometheusLabels& labels, double value) {
  os << name;
  if (!labels.empty()) {
    os << '{';
    bool first = true;
    for (const auto& [key, val] : labels) {
      if (!first) os << ',';
      first = false;
      os << key << "=\"" << prometheus_label_escape(val) << '"';
    }
    os << '}';
  }
  os << ' ' << prometheus_number(value) << '\n';
}

void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot) {
  for (const auto& e : snapshot.entries) {
    const std::string name = prometheus_name(e.name);
    switch (e.kind) {
      case MetricKind::kCounter:
        write_prometheus_type(os, name, "counter");
        write_prometheus_sample(os, name, {}, e.value);
        break;
      case MetricKind::kGauge:
        write_prometheus_type(os, name, "gauge");
        write_prometheus_sample(os, name, {}, e.value);
        break;
      case MetricKind::kHistogram: {
        write_prometheus_type(os, name, "histogram");
        const double width = (e.hi - e.lo) / static_cast<double>(e.buckets.size());
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < e.buckets.size(); ++i) {
          cumulative += e.buckets[i];
          const double upper = e.lo + width * static_cast<double>(i + 1);
          write_prometheus_sample(os, name + "_bucket", {{"le", prometheus_number(upper)}},
                                  static_cast<double>(cumulative));
        }
        write_prometheus_sample(os, name + "_bucket", {{"le", "+Inf"}},
                                static_cast<double>(cumulative));
        write_prometheus_sample(os, name + "_sum", {}, e.sum);
        write_prometheus_sample(os, name + "_count", {}, static_cast<double>(cumulative));
        break;
      }
    }
  }
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  write_prometheus(os, snapshot);
  return os.str();
}

}  // namespace rh::telemetry
