// Prometheus text exposition rendering for the metrics registry — the
// scrape format behind rh_serve's GET /metricsz.
//
// Any MetricsSnapshot renders as one family per metric: counters and gauges
// as a single sample, FixedHistograms as the cumulative-bucket encoding
// (`_bucket{le="..."}` per upper edge plus `+Inf`, `_sum`, `_count`).
// Output is deterministic: families appear in snapshot order (sorted by
// metric name), every number uses the same canonical rendering as the JSON
// export path, and two snapshots of the same registry state produce
// byte-identical documents.
//
// Metric names are sanitized into the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*): the registry's hierarchical dots become
// underscores ("serve.http_request_us" -> "serve_http_request_us").
// Label helpers are exposed for callers (the server's per-tenant and
// per-rig series) that render labeled samples alongside a registry.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"

namespace rh::telemetry {

/// One `name="value"` pair; values are escaped on render.
using PrometheusLabels = std::vector<std::pair<std::string, std::string>>;

/// Sanitizes `name` into the Prometheus metric-name grammar: every
/// character outside [a-zA-Z0-9_:] becomes '_', and a leading digit gets a
/// '_' prefix. Idempotent.
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// Escapes a label value ('\\', '"', and newline, per the exposition spec).
[[nodiscard]] std::string prometheus_label_escape(std::string_view value);

/// Canonical number rendering shared by every sample line: integral values
/// print without a decimal point, everything else at full precision;
/// non-finite values render as 0 (a scrape must never carry NaN).
[[nodiscard]] std::string prometheus_number(double v);

/// Writes one `# TYPE` header line. `type` is "counter", "gauge", or
/// "histogram"; `name` must already be sanitized.
void write_prometheus_type(std::ostream& os, std::string_view name, std::string_view type);

/// Writes one sample line `name{labels} value` (labels omitted when empty).
/// `name` must already be sanitized and may carry a suffix ("_bucket").
void write_prometheus_sample(std::ostream& os, std::string_view name,
                             const PrometheusLabels& labels, double value);

/// Renders every entry of `snapshot` in text exposition format. Histograms
/// emit cumulative buckets: one `_bucket{le="<upper>"}` per bucket edge and
/// a closing `le="+Inf"` equal to `_count` (edge-clamped samples live in
/// the outermost buckets, so the finite edges are exact for in-range
/// observations).
void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot);

/// `write_prometheus` into a string (what the /metricsz handler serves).
[[nodiscard]] std::string prometheus_text(const MetricsSnapshot& snapshot);

}  // namespace rh::telemetry
