// The telemetry facade: one sink object that the whole simulator stack
// (device, pseudo channels, banks, executor) reports into.
//
// Aggregates
//   - a MetricsRegistry (command counters, TRR/flip counters, REF-pointer
//     gauges, flip-size histogram),
//   - a command TraceRing exportable as Chrome trace-event JSON,
//   - domain event streams (TRR triggers, bit-flip materializations), and
//   - a per-bank ACT-count heatmap rendered through common/ascii_plot.
//
// Cost model: instrumented code holds a `Telemetry*` that is null by default.
// Every hook site goes through the RH_TELEM macro, so
//   - with telemetry compiled in but not attached, each site costs exactly
//     one pointer test (the <5 % ACT-hot-loop budget bench/micro_simulator
//     pins), and
//   - with RH_TELEMETRY_DISABLED defined (CMake -DRH_TELEMETRY=OFF), every
//     site compiles out entirely.
// Hot-path hooks index pre-resolved counter pointers; no name lookups occur
// after construction.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

#if defined(RH_TELEMETRY_DISABLED)
#define RH_TELEM(sink, call) ((void)0)
#else
/// Invokes `sink->call` when `sink` (a Telemetry*) is attached; one branch
/// otherwise. Usage: RH_TELEM(telemetry_, on_command(...));
#define RH_TELEM(sink, call)                       \
  do {                                             \
    if (auto* rh_telem_sink_ = (sink)) {           \
      rh_telem_sink_->call;                        \
    }                                              \
  } while (0)
#endif

namespace rh::telemetry {

class SpanSheet;  // span.hpp — only the chrome export path touches it

struct TelemetryConfig {
  /// Command-trace ring capacity (events retained for export).
  std::size_t trace_capacity = 1 << 16;
  /// Record per-command trace events (counters/heatmaps accrue regardless).
  bool trace_enabled = true;
  /// Interface-clock period for trace timestamp conversion (HBM2: 1.667 ns).
  double ns_per_cycle = 1.667;
  /// Heatmap dimensions; defaults mirror the paper stack (8 ch x 2 pc x 16
  /// banks).
  std::uint32_t channels = 8;
  std::uint32_t pseudo_channels = 2;
  std::uint32_t banks = 16;
  /// Bounds on the retained domain event streams (oldest kept; the
  /// corresponding counters keep exact totals past the bound).
  std::size_t max_trr_events = 1 << 16;
  std::size_t max_flip_events = 1 << 16;
};

/// One TRR trigger decision (proprietary sampler or documented JEDEC mode).
struct TrrEvent {
  std::uint64_t cycle = 0;
  std::uint32_t logical_row = 0;
  std::uint8_t channel = 0;
  std::uint8_t pseudo_channel = 0;
  std::uint8_t bank = 0;
  bool documented = false;
};

/// One bit-flip materialization: a row settle that flipped bits, with the
/// accumulated disturbance that drove it (the diagnostic for "which
/// aggressor pressure caused this").
struct FlipEvent {
  std::uint64_t cycle = 0;
  std::uint32_t physical_row = 0;
  std::uint32_t rowhammer_bits = 0;
  std::uint32_t retention_bits = 0;
  double disturbance = 0.0;
  std::uint8_t channel = 0;
  std::uint8_t pseudo_channel = 0;
  std::uint8_t bank = 0;
};

class Telemetry {
public:
  explicit Telemetry(TelemetryConfig config = TelemetryConfig{});

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  // --- hooks (called by instrumented code through RH_TELEM) --------------
  /// One interface command. Bumps the per-command counter, the per-bank ACT
  /// heatmap (for ACT), and the trace ring.
  void on_command(TraceCommand cmd, std::uint64_t cycle, std::uint32_t channel,
                  std::uint32_t pseudo_channel, std::uint32_t bank, std::uint32_t row,
                  std::uint32_t arg = 0);
  /// One HAMMER macro-op batch: `acts` activations land on the ACT counter
  /// and heatmap; the batch itself is one trace event carrying the count.
  void on_hammer(std::uint64_t end_cycle, std::uint32_t channel, std::uint32_t pseudo_channel,
                 std::uint32_t bank, std::uint32_t row, std::uint64_t acts);
  /// A TRR engine spent part of a REF on a victim refresh.
  void on_trr_trigger(std::uint64_t cycle, std::uint32_t channel, std::uint32_t pseudo_channel,
                      std::uint32_t bank, std::uint32_t logical_row, bool documented);
  /// A row settle materialized bit flips.
  void on_bit_flips(std::uint64_t cycle, std::uint32_t channel, std::uint32_t pseudo_channel,
                    std::uint32_t bank, std::uint32_t physical_row, std::uint32_t rowhammer_bits,
                    std::uint32_t retention_bits, double disturbance);
  /// REF advanced a pseudo channel's refresh pointer.
  void on_refresh_pointer(std::uint32_t channel, std::uint32_t pseudo_channel,
                          std::uint32_t pointer);

  // --- introspection -----------------------------------------------------
  [[nodiscard]] MetricsRegistry& metrics() { return registry_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return registry_; }
  [[nodiscard]] const TraceRing& trace() const { return trace_; }
  [[nodiscard]] const std::vector<TrrEvent>& trr_events() const { return trr_events_; }
  [[nodiscard]] const std::vector<FlipEvent>& flip_events() const { return flip_events_; }
  [[nodiscard]] const TelemetryConfig& config() const { return config_; }

  /// ACT count of one bank (heatmap cell).
  [[nodiscard]] std::uint64_t bank_act_count(std::uint32_t channel, std::uint32_t pseudo_channel,
                                             std::uint32_t bank) const;
  /// Flat heatmap, indexed (channel * pcs + pc) * banks + bank.
  [[nodiscard]] const std::vector<std::uint64_t>& bank_act_counts() const { return bank_acts_; }
  /// Sum over all heatmap cells (== total ACTs recorded).
  [[nodiscard]] std::uint64_t total_acts() const;

  /// Trace events dropped by ring overwrite, including every absorbed
  /// sink's drops — what the `telemetry.trace_dropped` counter reports.
  [[nodiscard]] std::uint64_t trace_dropped_total() const {
    return trace_.dropped() + absorbed_dropped_;
  }

  // --- export ------------------------------------------------------------
  /// Registry snapshot (counters/gauges/histograms), plus a synthesized
  /// `telemetry.trace_dropped` counter so truncated Chrome traces surface
  /// in every metrics document instead of failing silently.
  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Full metrics document: registry snapshot + per-bank ACT heatmap +
  /// trace/event-stream accounting, as one JSON object.
  void write_metrics_json(std::ostream& os) const;
  /// The retained command trace as Chrome trace-event JSON. With `spans`
  /// attached, the campaign span tree rides in the same traceEvents array
  /// as async events (its own "campaign spans" process).
  void write_chrome_trace(std::ostream& os, const SpanSheet* spans = nullptr) const;
  /// Per-bank ACT heatmap as an ASCII intensity grid (one row per
  /// channel/pseudo-channel lane, one column per bank).
  void render_act_heatmap(std::ostream& os) const;

  /// Folds another sink's observations into this one: counters/histograms
  /// and the per-bank ACT heatmap add, gauges take the absorbed sink's
  /// values, domain event streams append (up to the configured caps), and
  /// the absorbed trace events push into this ring (oldest overwritten).
  /// Used by the campaign runner to aggregate per-worker sinks after a
  /// parallel sweep; call from one thread only, once the workers are joined.
  /// Precondition: identical heatmap dimensions.
  void absorb(const Telemetry& other);

  /// Clears metrics, trace, events, and the heatmap.
  void reset();

private:
  TelemetryConfig config_;
  MetricsRegistry registry_;
  TraceRing trace_;
  std::uint64_t absorbed_dropped_ = 0;  ///< drops carried in from absorb()
  std::vector<TrrEvent> trr_events_;
  std::vector<FlipEvent> flip_events_;
  std::vector<std::uint64_t> bank_acts_;

  // Pre-resolved hot-path metrics (stable addresses into registry_).
  Counter* cmd_counters_[kTraceCommandCount] = {};
  Counter* trr_proprietary_ = nullptr;
  Counter* trr_documented_ = nullptr;
  Counter* flip_rowhammer_bits_ = nullptr;
  Counter* flip_retention_bits_ = nullptr;
  Counter* flip_events_counter_ = nullptr;
  FixedHistogram* flip_size_hist_ = nullptr;
  std::vector<Gauge*> ref_pointers_;  ///< per (channel, pc)

  [[nodiscard]] std::size_t heat_index(std::uint32_t channel, std::uint32_t pseudo_channel,
                                       std::uint32_t bank) const;
};

}  // namespace rh::telemetry
