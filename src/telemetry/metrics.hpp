// The metrics registry: named counters, gauges, and fixed-bucket histograms
// with a snapshot/export path, built for instrumentation of the simulator's
// hot paths.
//
// Cost model: looking a metric up by name is a map lookup, so hot paths
// resolve their metrics *once* (the Telemetry facade caches raw pointers at
// construction) and then pay one increment per event. References returned by
// the registry are stable for the registry's lifetime (node-based storage).
//
// Snapshots are value types decoupled from the live registry: they can be
// exported as JSON or CSV (via common/csv) after the instrumented run ends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/csv.hpp"

namespace rh::telemetry {

/// Monotonically increasing event count.
class Counter {
public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

private:
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value (refresh pointer, temperature, ...).
class Gauge {
public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

private:
  double value_ = 0.0;
};

/// count/sum plus the distribution quantiles the run-report and JSON export
/// paths print. Quantiles are estimated from the bucket counts (linear
/// interpolation within the covering bucket), so they are exact to bucket
/// resolution, not to sample resolution.
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Quantile q in [0, 1] of a fixed-width-bucket histogram over [lo, hi),
/// linearly interpolated within the covering bucket. Returns 0 for an empty
/// histogram; q outside [0, 1] is clamped. Shared by FixedHistogram and the
/// snapshot export path (which only has the bucket vector).
[[nodiscard]] double histogram_quantile(double lo, double hi,
                                        const std::vector<std::uint64_t>& buckets, double q);

/// Fixed-width-bucket histogram over [lo, hi); samples outside the range are
/// clamped into the edge buckets (mirrors common::Histogram, but with the
/// integer counts and bucket introspection the export path needs). The sum
/// accumulates the *observed* values (pre-clamp), so mean = sum/total is
/// faithful even when samples land in the edge buckets.
class FixedHistogram {
public:
  FixedHistogram(double lo, double hi, std::size_t bins);

  void observe(double x);
  /// Adds `other`'s bucket counts and sum. Precondition: identical lo/hi/bins.
  void merge_from(const FixedHistogram& other);
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return counts_; }
  /// Inclusive-exclusive value range [lower, upper) of bucket `i`.
  [[nodiscard]] double bucket_lower(std::size_t i) const;
  [[nodiscard]] double bucket_upper(std::size_t i) const;
  /// Quantile q in [0, 1], interpolated within the covering bucket (see
  /// histogram_quantile). 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  /// count/sum/p50/p90/p99 in one call (what the run report prints).
  [[nodiscard]] HistogramSummary summary() const;
  void reset();

private:
  double lo_;
  double hi_;
  double sum_ = 0.0;
  std::vector<std::uint64_t> counts_;
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] constexpr std::string_view to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

/// One exported metric: counters/gauges carry `value`; histograms carry
/// `value` = total samples plus the bucket vector, range, and sum.
struct SnapshotEntry {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  double sum = 0.0;
  std::vector<std::uint64_t> buckets;
};

/// Point-in-time copy of a registry, ordered by metric name.
struct MetricsSnapshot {
  std::vector<SnapshotEntry> entries;

  /// Entry by exact name, or nullptr.
  [[nodiscard]] const SnapshotEntry* find(std::string_view name) const;
  /// Counter/gauge value by name; `def` when absent.
  [[nodiscard]] double value_or(std::string_view name, double def) const;

  /// Emits the snapshot as a JSON object {"counters":{...}, "gauges":{...},
  /// "histograms":{...}}. Metric names are sorted within each group and
  /// every object's keys are emitted in sorted order, so two snapshots of
  /// the same state produce byte-identical documents. Each histogram is
  /// {"bounds":[b0..bn] (the n+1 bucket edges), "buckets":[counts],
  ///  "count":samples, "hi":, "lo":, "p50":, "p90":, "p99":, "sum":}.
  void write_json(std::ostream& os) const;
  /// Emits one CSV row per metric (histograms: one row per bucket) through
  /// the common CSV helper: metric,kind,lo,hi,value.
  void write_csv(common::CsvWriter& csv) const;
};

/// Owns named metrics. Names are hierarchical by convention ("cmd.act",
/// "trr.proprietary_triggers"). Re-requesting a name returns the same
/// instance; a histogram re-request ignores the bounds arguments.
class MetricsRegistry {
public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  FixedHistogram& histogram(const std::string& name, double lo, double hi, std::size_t bins);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Folds another registry into this one: counters add, gauges take the
  /// merged registry's value (last merge wins), histograms add bucket counts
  /// (shape must match). Metrics absent here are created. The aggregation
  /// primitive behind merging per-worker campaign telemetry into one sink.
  void merge_from(const MetricsRegistry& other);
  /// Zeroes every registered metric (registration survives).
  void reset();

private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, FixedHistogram> histograms_;
};

/// Escapes a string for embedding in a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace rh::telemetry
