#include "telemetry/span.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace rh::telemetry {

namespace {

/// Wall milliseconds -> microsecond timestamp text (Chrome ts unit).
std::string ts_text(double wall_ms) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", wall_ms * 1000.0);
  return buf;
}

}  // namespace

std::size_t SpanSheet::add(const Span& span) {
  spans_.push_back(span);
  return spans_.size() - 1;
}

void SpanSheet::merge_from(const SpanSheet& other) {
  spans_.insert(spans_.end(), other.spans_.begin(), other.spans_.end());
  dropped_ += other.dropped_;
}

void SpanSheet::sort_canonical() {
  std::stable_sort(spans_.begin(), spans_.end(), [](const Span& a, const Span& b) {
    if (a.id != b.id) return a.id < b.id;
    // Marks share the enclosing attempt's id space only via seq, so ties
    // (never expected) fall back to open time.
    return a.begin_cycle < b.begin_cycle;
  });
}

void SpanSheet::clear() {
  spans_.clear();
  dropped_ = 0;
}

TraceContext::TraceContext(SpanSheet& sheet, std::uint64_t shard,
                           std::chrono::steady_clock::time_point epoch, std::uint64_t parent)
    : sheet_(&sheet), shard_(shard), parent_(parent), epoch_(epoch) {}

double TraceContext::wall_now_ms() const {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint64_t TraceContext::innermost_parent() const {
  return stack_.empty() ? parent_ : sheet_->at(stack_.back()).id;
}

std::uint64_t TraceContext::open(SpanKind kind, std::uint64_t cycle) {
  // Structural spans (shard/attempt) ignore the budget: without them the
  // tree loses its spine and the retained phase spans dangle.
  const bool structural = kind == SpanKind::kShard || kind == SpanKind::kAttempt;
  if (!structural) {
    if (budget_ == 0) {
      sheet_->note_dropped();
      return 0;
    }
    --budget_;
  }
  Span span;
  span.id = span_id(shard_, attempt_, seq_++);
  span.parent = innermost_parent();
  span.shard = shard_;
  span.attempt = attempt_;
  span.kind = kind;
  span.begin_cycle = cycle;
  span.end_cycle = cycle;
  span.begin_wall_ms = wall_now_ms();
  span.end_wall_ms = span.begin_wall_ms;
  span.open = true;
  stack_.push_back(sheet_->add(span));
  return span.id;
}

void TraceContext::close(std::uint64_t id, std::uint64_t cycle) {
  if (id == 0) return;  // budget-dropped span
  const double wall = wall_now_ms();
  while (!stack_.empty()) {
    Span& span = sheet_->at(stack_.back());
    stack_.pop_back();
    span.end_cycle = cycle;
    span.end_wall_ms = wall;
    span.open = false;
    if (span.id == id) return;
    // An out-of-order close (exception unwound past inner scopes): the
    // skipped spans close at the same instant rather than staying open.
  }
}

void TraceContext::mark(SpanKind kind, std::uint64_t cycle, std::uint32_t arg) {
  Span span;
  span.id = span_id(shard_, attempt_, seq_++);
  span.parent = innermost_parent();
  span.shard = shard_;
  span.attempt = attempt_;
  span.kind = kind;
  span.arg = arg;
  span.begin_cycle = cycle;
  span.end_cycle = cycle;
  span.begin_wall_ms = wall_now_ms();
  span.end_wall_ms = span.begin_wall_ms;
  span.open = false;
  sheet_->add(span);
}

void TraceContext::set_attempt(std::uint32_t attempt) {
  attempt_ = attempt;
  seq_ = 0;
  budget_ = kSpanBudgetPerAttempt;
}

void write_chrome_span_events(std::ostream& os, const std::vector<Span>& spans, bool& first) {
  if (spans.empty()) return;
  // One pseudo-process groups the span tree away from the per-channel
  // command lanes; tid = shard keeps one timeline row per shard.
  constexpr unsigned kSpanPid = 1000;
  if (!first) os << ',';
  first = false;
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kSpanPid
     << ",\"args\":{\"name\":\"campaign spans\"}}";
  for (const Span& s : spans) {
    const char* id_fmt = "0x%llx";
    char id_buf[32];
    std::snprintf(id_buf, sizeof id_buf, id_fmt, static_cast<unsigned long long>(s.id));
    char parent_buf[32];
    std::snprintf(parent_buf, sizeof parent_buf, id_fmt,
                  static_cast<unsigned long long>(s.parent));
    const std::uint64_t cycles = s.end_cycle - s.begin_cycle;
    const bool is_mark = s.kind == SpanKind::kFault || s.kind == SpanKind::kRecovery;
    if (is_mark) {
      os << ",{\"name\":\"" << to_string(s.kind) << "\",\"cat\":\"span\",\"ph\":\"n\",\"id\":\""
         << id_buf << "\",\"pid\":" << kSpanPid << ",\"tid\":" << s.shard
         << ",\"ts\":" << ts_text(s.begin_wall_ms) << ",\"args\":{\"arg\":" << s.arg
         << ",\"attempt\":" << s.attempt << ",\"cycle\":" << s.begin_cycle
         << ",\"parent\":\"" << parent_buf << "\",\"shard\":" << s.shard << "}}";
      continue;
    }
    os << ",{\"name\":\"" << to_string(s.kind) << "\",\"cat\":\"span\",\"ph\":\"b\",\"id\":\""
       << id_buf << "\",\"pid\":" << kSpanPid << ",\"tid\":" << s.shard
       << ",\"ts\":" << ts_text(s.begin_wall_ms) << ",\"args\":{\"attempt\":" << s.attempt
       << ",\"cycles\":" << cycles << ",\"open\":" << (s.open ? "true" : "false")
       << ",\"parent\":\"" << parent_buf << "\",\"shard\":" << s.shard << "}}";
    os << ",{\"name\":\"" << to_string(s.kind) << "\",\"cat\":\"span\",\"ph\":\"e\",\"id\":\""
       << id_buf << "\",\"pid\":" << kSpanPid << ",\"tid\":" << s.shard
       << ",\"ts\":" << ts_text(s.end_wall_ms) << "}";
  }
}

void write_chrome_spans(std::ostream& os, const SpanSheet& sheet) {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  write_chrome_span_events(os, sheet.spans(), first);
  os << "]}";
}

}  // namespace rh::telemetry
