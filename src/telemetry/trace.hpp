// Command-level tracing: a bounded ring buffer of per-pseudo-channel
// {cycle, command, bank, row} events, exportable as Chrome trace-event JSON
// so command timelines render directly in chrome://tracing / Perfetto.
//
// The ring is the paper-infrastructure analogue of DRAM Bender's visibility
// into the exact command stream a test emits: the device records the last N
// commands with zero allocation per event; older events are overwritten and
// accounted as dropped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace rh::telemetry {

/// Command vocabulary of the trace stream. Superset of the HBM2 command set:
/// includes the executor's HAMMER macro-ops (one event per batch, count in
/// `arg`) and domain markers for TRR triggers and bit-flip materializations.
enum class TraceCommand : std::uint8_t {
  kAct = 0,
  kPre,
  kPreA,
  kRd,
  kWr,
  kRef,
  kMrs,
  kSrEnter,
  kSrExit,
  kHammer,
  kTrrTrigger,
  kBitFlip,
  kFault,     ///< an injected/detected infrastructure fault (arg = FaultKind)
  kRecovery,  ///< the matching recovery or abort (arg = FaultKind)
};

inline constexpr std::size_t kTraceCommandCount = 14;

[[nodiscard]] constexpr std::string_view to_string(TraceCommand c) {
  switch (c) {
    case TraceCommand::kAct: return "ACT";
    case TraceCommand::kPre: return "PRE";
    case TraceCommand::kPreA: return "PREA";
    case TraceCommand::kRd: return "RD";
    case TraceCommand::kWr: return "WR";
    case TraceCommand::kRef: return "REF";
    case TraceCommand::kMrs: return "MRS";
    case TraceCommand::kSrEnter: return "SRE";
    case TraceCommand::kSrExit: return "SRX";
    case TraceCommand::kHammer: return "HAMMER";
    case TraceCommand::kTrrTrigger: return "TRR";
    case TraceCommand::kBitFlip: return "FLIP";
    case TraceCommand::kFault: return "FAULT";
    case TraceCommand::kRecovery: return "RECOVERY";
  }
  return "?";
}

/// One traced command. 24 bytes; the ring stores these by value.
struct CommandEvent {
  std::uint64_t cycle = 0;
  std::uint32_t row = 0;  ///< row operand (0 for row-less commands)
  std::uint32_t arg = 0;  ///< command-specific payload (hammer count, MRS value, flip bits)
  std::uint8_t channel = 0;
  std::uint8_t pseudo_channel = 0;
  std::uint8_t bank = 0;
  TraceCommand command = TraceCommand::kAct;
};

/// Fixed-capacity overwrite-oldest ring of CommandEvents.
class TraceRing {
public:
  explicit TraceRing(std::size_t capacity);

  void push(const CommandEvent& e);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const;
  /// Events pushed over the ring's lifetime.
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  /// Events overwritten before export.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<CommandEvent> in_order() const;
  void clear();

private:
  std::vector<CommandEvent> buffer_;
  std::size_t capacity_ = 0;
  std::uint64_t total_ = 0;
};

/// Writes `events` as Chrome trace-event JSON ({"traceEvents":[...]}).
/// Each command becomes a complete ("X") slice: pid = channel, tid = pseudo
/// channel, ts/dur in microseconds (`ns_per_cycle` converts the cycle
/// counter), args = {bank, row, arg}. Process/thread metadata events label
/// the channel/pseudo-channel lanes for the Perfetto UI.
void write_chrome_trace(std::ostream& os, const std::vector<CommandEvent>& events,
                        double ns_per_cycle);

/// Writes the command slices (with their lane metadata) into an
/// already-open traceEvents array; `first` tracks comma state so further
/// writers (e.g. span events) can append to the same array.
void write_chrome_trace_events(std::ostream& os, const std::vector<CommandEvent>& events,
                               double ns_per_cycle, bool& first);

}  // namespace rh::telemetry
