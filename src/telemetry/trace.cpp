#include "telemetry/trace.hpp"

#include <ostream>
#include <set>

#include "common/assert.hpp"
#include "telemetry/metrics.hpp"

namespace rh::telemetry {

TraceRing::TraceRing(std::size_t capacity) : capacity_(capacity) {
  RH_EXPECTS(capacity > 0);
  buffer_.reserve(capacity);
}

void TraceRing::push(const CommandEvent& e) {
  if (buffer_.size() < capacity_) {
    buffer_.push_back(e);
  } else {
    buffer_[static_cast<std::size_t>(total_ % capacity_)] = e;
  }
  ++total_;
}

std::size_t TraceRing::size() const { return buffer_.size(); }

std::uint64_t TraceRing::dropped() const { return total_ - buffer_.size(); }

std::vector<CommandEvent> TraceRing::in_order() const {
  std::vector<CommandEvent> out;
  out.reserve(buffer_.size());
  if (total_ <= capacity_) {
    out = buffer_;
  } else {
    const auto head = static_cast<std::size_t>(total_ % capacity_);
    out.insert(out.end(), buffer_.begin() + static_cast<std::ptrdiff_t>(head), buffer_.end());
    out.insert(out.end(), buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return out;
}

void TraceRing::clear() {
  buffer_.clear();
  total_ = 0;
}

void write_chrome_trace(std::ostream& os, const std::vector<CommandEvent>& events,
                        double ns_per_cycle) {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  write_chrome_trace_events(os, events, ns_per_cycle, first);
  os << "]}";
}

void write_chrome_trace_events(std::ostream& os, const std::vector<CommandEvent>& events,
                               double ns_per_cycle, bool& first) {
  // Label the lanes: one "process" per channel, one "thread" per pseudo
  // channel, so Perfetto shows "channel 3 / pc 1" instead of bare ids.
  std::set<std::pair<std::uint8_t, std::uint8_t>> lanes;
  for (const auto& e : events) lanes.insert({e.channel, e.pseudo_channel});
  std::set<std::uint8_t> channels;
  for (const auto& [ch, pc] : lanes) channels.insert(ch);
  for (const auto ch : channels) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << static_cast<unsigned>(ch)
       << ",\"args\":{\"name\":\"channel " << static_cast<unsigned>(ch) << "\"}}";
  }
  for (const auto& [ch, pc] : lanes) {
    os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << static_cast<unsigned>(ch)
       << ",\"tid\":" << static_cast<unsigned>(pc) << ",\"args\":{\"name\":\"pseudo channel "
       << static_cast<unsigned>(pc) << "\"}}";
    first = false;
  }

  const double us_per_cycle = ns_per_cycle / 1000.0;
  for (const auto& e : events) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << to_string(e.command) << "\",\"cat\":\"dram\",\"ph\":\"X\",\"ts\":"
       << static_cast<double>(e.cycle) * us_per_cycle << ",\"dur\":" << us_per_cycle
       << ",\"pid\":" << static_cast<unsigned>(e.channel)
       << ",\"tid\":" << static_cast<unsigned>(e.pseudo_channel) << ",\"args\":{\"bank\":"
       << static_cast<unsigned>(e.bank) << ",\"row\":" << e.row << ",\"arg\":" << e.arg << "}}";
  }
}

}  // namespace rh::telemetry
